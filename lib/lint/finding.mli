(** Lint findings: one invariant violation at one source location.

    Every rule is a named, documented repo invariant (see DESIGN.md §11
    and §16 for the catalogue); findings render either as classic
    [file:line:col: [rule] message] text lines (deep findings append an
    indented call-graph trace) or as a canonical JSON report whose
    schema is frozen by test_lint. *)

type rule =
  | View_boundary
      (** Definition 1: locals read a {!Core.View.t} and nothing else;
          [View.make] only in the engine/reduction modules of
          {!Lint.Policy.view_builders}. *)
  | Determinism
      (** transcripts must be bit-identical at any domain-pool width: no
          global PRNG, no wall clock outside Metrics, no raw
          [Domain.spawn] outside Parallel. *)
  | Referee_totality
      (** hardened referees must be total: no [failwith], [assert false]
          or partial stdlib ([List.hd], [List.nth], [Option.get],
          [Array.unsafe_get]) without a justified suppression. *)
  | Span_grammar
      (** span-label literals must classify cleanly under
          {!Core.Bound_audit.classify_label} — a near-miss spelling
          silently escapes the theorem audit. *)
  | Bit_accounting
      (** message bytes are constructed via [Message] / [lib/bits] only;
          raw [Bytes] / [Buffer] use is confined to the sanctioned byte
          layers of {!Lint.Policy.bytes_ok}. *)
  | Exn_escape
      (** deep: an exception outside the documented malformed class
          ({!Lint.Exnflow.allowed}) may escape a registered referee's
          [init]/[absorb]/[finish] (or a Bcc [r_*] round function) — the
          hardened combinators would not absorb it, so a hostile input
          could crash the referee instead of degrading the verdict. *)
  | Parallel_race
      (** deep: mutable state captured by a closure handed to the
          [Parallel] pool is written without a provably domain- or
          item-indexed access path, so transcripts may depend on the
          pool width. *)
  | Blocking_call
      (** deep: a blocking [Unix] call is reachable on the call graph
          from the serve daemon's select loop outside the allowlisted
          poll points — a slow client could stall the whole shard. *)
  | Stale_suppression
      (** deep: a [(* lint: allow <rule> *)] comment whose rule no
          longer fires on that line; dead suppressions hide future
          regressions and must be deleted (or justified with an
          [allow stale-suppression]). *)
  | Parse_error
      (** the file does not parse (or a suppression comment names an
          unknown rule) — reported as a finding, never as a crash. *)

val all_rules : rule list

(** [rule_name r] is the kebab-case name used in reports and in
    [(* lint: allow <rule> *)] suppressions. *)
val rule_name : rule -> string

val rule_of_name : string -> rule option

(** One hop of a call-graph witness for a deep finding.  [s_fn] is the
    qualified name of the function the step is in; the last step's
    [s_note] names the defect (the raise site, syscall or mutation). *)
type step = { s_file : string; s_line : int; s_fn : string; s_note : string }

type t = {
  rule : rule;
  file : string;  (** normalized to '/' separators, as scanned *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  message : string;
  trace : step list;  (** empty for the per-file (shallow) rules *)
}

(** Total order: file, line, col, rule name, message. *)
val compare : t -> t -> int

(** [to_string f] is ["file:line:col: [rule] message"], followed by one
    indented line per trace step for deep findings. *)
val to_string : t -> string

(** [to_json f] is one canonical JSON object (sorted keys, no
    whitespace), including the ["trace"] array. *)
val to_json : t -> string

(** [report_json findings] is the full report document, schema v2:
    [{"findings":[...],"version":2}].  [?wall_ms] and [?files] append
    the lint wall time and scanned-file count when the caller measured
    them (the CLI does; the frozen-schema tests exercise both forms). *)
val report_json : ?wall_ms:int -> ?files:int -> t list -> string
