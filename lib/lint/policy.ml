(* Allowlists are deny-by-default: a module added tomorrow is subject
   to every rule until it is listed here, with its reason, or carries a
   per-line suppression.  Keep each entry justified — the reviewer of a
   policy change is reviewing an information-flow exception. *)

let has_substring s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let matches path entries =
  let path = "/" ^ path in
  List.exists
    (fun entry ->
      if String.length entry > 0 && entry.[String.length entry - 1] = '/' then
        has_substring path ("/" ^ entry)
      else String.ends_with ~suffix:("/" ^ entry) path)
    entries

(* View.t constructors (Definition 1's boundary): the engine builds real
   nodes' views, the reductions and the fooling-set harness evaluate
   locals on fictitious views — exactly the list in view.mli. *)
let view_builders =
  [
    "lib/core/simulator.ml" (* engine: one view per real node *);
    "lib/core/coalition.ml" (* engine: coalition runs *);
    "lib/core/bcc.ml" (* engine: multi-round views *);
    "lib/core/reduction.ml" (* referee-side gadget-vertex probes *);
    "lib/core/bipartite_reduction.ml" (* referee-side gadget-vertex probes *);
    "lib/core/fooling.ml" (* lower-bound harness: evaluates locals on candidate views *);
    "lib/core/view.ml" (* the constructor itself *);
  ]

(* Wall-clock reads: Metrics owns the clock (injected, so tests can fix
   it); the bench harness stamps its own JSON output.  The serve layer
   reads wall time only at its edges — everything inward takes an
   injected clock so timeout paths stay testable. *)
let clock_ok =
  [
    "lib/core/metrics.ml";
    "bench/main.ml";
    "lib/serve/engine.ml" (* the *default* clock only; create ?clock injects *);
    "lib/serve/daemon.ml" (* select-loop pacing against real sockets *);
    "lib/serve/selftest.ml" (* throughput measurement; the engine under test runs virtual *);
    "lib/lint/driver.ml" (* lint wall-time in the --json report; the linter is not a model run *);
  ]

(* Unix socket / file-descriptor syscalls: only the serve transport may
   talk to the kernel.  The engine is transport-free by construction
   (bytes in, bytes out), so every syscall lives in these two files and
   model runs stay kernel-free and reproducible. *)
let unix_ok =
  [
    "lib/serve/daemon.ml" (* listener + select loop: the server-side transport *);
    "lib/serve/client.ml" (* blocking connector: the client-side transport *);
  ]

(* Domain.spawn: the deterministic domain pool is the only place new
   domains may be born — everything else goes through Parallel. *)
let spawn_ok = [ "lib/core/parallel.ml" ]

(* bench/main.ml's failwith calls are bench assertions: a violated
   invariant must abort the campaign, loudly.  Nothing in bench runs
   inside a referee. *)
let totality_exempt = [ "bench/main.ml" ]

(* ---------- deep-pass policy (callgraph rules) ---------- *)

(* Roots of the blocking-call reachability pass: the serve daemon's
   select loop.  Everything reachable from here on the call graph must
   stay non-blocking, or a slow client stalls every session on the
   shard. *)
let blocking_roots = [ ("lib/serve/daemon.ml", "run") ]

(* Allowlisted poll points: the only functions (matched by file plus any
   component of the nested definition path) where descriptor I/O
   syscalls (read/write/accept/select/...) may appear on a path from a
   blocking root.  Hard-blocking calls (sleepf, connect, DNS) are never
   allowed on such a path — those need a per-line justification. *)
let poll_points =
  [
    ("lib/serve/daemon.ml", "run")
    (* the select loop itself: reads/writes only fire on select-ready
       descriptors, and every conn fd is set_nonblock at accept *);
    ("lib/serve/daemon.ml", "answer_scrape")
    (* deliberate short blocking read, bounded by SO_RCVTIMEO = 0.2 s;
       scrapers send the full GET immediately *);
  ]

(* Modules exempt from the parallel-race pass as a whole: the domain
   pool itself (its batch bookkeeping is the synchronization the rule
   assumes) — everything else justifies each captured write per line. *)
let race_ok = [ "lib/core/parallel.ml" ]

(* Raw Bytes/Buffer: the byte layers themselves, plus the
   string-rendering modules (JSON/graph6 codecs, trace sinks).  Protocol
   modules never appear here — their bits go through Message. *)
let bytes_ok =
  [
    "lib/bits/" (* the sanctioned bit layer *);
    "lib/bigint/" (* limb storage for Nat *);
    "lib/algebra/power_sum.ml" (* memo-table scratch *);
    "lib/graph/gio.ml" (* graph6 / edge-list codecs *);
    "lib/graph/treewidth.ml" (* bitset DP tables *);
    "lib/core/message.ml" (* the message layer itself *);
    "lib/core/trace.ml" (* JSONL rendering *);
    "lib/core/flight.ml" (* flight-record binary codec: dump framing and
                            JSONL re-rendering, not message bits *);
    "lib/core/report.ml" (* JSON parsing/rendering *);
    "lib/core/metrics.ml" (* exposition formats *);
    "lib/core/fooling.ml" (* transcript fingerprints, not messages *);
    "lib/lint/" (* the linter's own string rendering *);
    "lib/serve/" (* transport framing: wire bytes, not message bits — in-frame
                    payloads still round-trip through Message *);
  ]
