(** The repo's lint policy: which modules are allowed to cross which
    boundary, with the reason recorded next to each entry (see
    policy.ml).  There is deliberately no external config file — the
    allowlists are code, reviewed like code, and a new module is covered
    by every rule until someone adds it here or writes a per-line
    [(* lint: allow <rule> — reason *)] suppression.

    Entries are path suffixes ("lib/core/metrics.ml") or directory
    scopes ("lib/bits/"), matched against '/'-normalized paths, so the
    linter works from the repo root or any parent directory. *)

(** [matches path entries] — [path] ends with one of the file entries
    (on a component boundary) or passes through one of the directory
    entries. *)
val matches : string -> string list -> bool

(** Modules allowed to call [View.make] — the execution engine and the
    referee-side oracle simulations listed in view.mli. *)
val view_builders : string list

(** Modules allowed to read the wall clock ([Unix.gettimeofday],
    [Sys.time], ...). *)
val clock_ok : string list

(** Modules allowed to issue [Unix] socket / file-descriptor syscalls
    ([Unix.socket], [Unix.select], ...) — the serve transport only. *)
val unix_ok : string list

(** Modules allowed to call [Domain.spawn]. *)
val spawn_ok : string list

(** Modules exempt from the referee-totality rule as a whole. *)
val totality_exempt : string list

(** The sanctioned byte layers: modules allowed to touch raw [Bytes] /
    [Buffer]. *)
val bytes_ok : string list

(** Roots of the blocking-call reachability pass, as
    [(file-suffix, top-level function)] pairs — the serve daemon's
    select loop. *)
val blocking_roots : (string * string) list

(** Allowlisted poll points for descriptor I/O syscalls reachable from a
    blocking root, as [(file-suffix, function)] pairs; a nested
    definition matches if any component of its path equals the listed
    function name. *)
val poll_points : (string * string) list

(** Modules exempt from the parallel-race pass (the domain pool
    itself). *)
val race_ok : string list
