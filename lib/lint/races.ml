(* Domain-race detector.

   Any closure handed to the [Parallel] pool runs concurrently on up to
   64 domains; a write through a variable the closure *captured* (free
   in the closure) makes transcripts width-dependent unless the write
   is provably partitioned.  The partition heuristic is the repo's own
   idiom: an indexed write [arr.(i) <- v] whose index expression
   mentions an identifier bound inside the closure (the item index, the
   domain slot, or a local derived from them — e.g. the simulator's
   [let id = order.(i) in views.(id - 1) <- ...]) touches a per-item /
   per-slot cell and is exempt.

   Flagged mutations on captured state:
     - [r := v], [incr r], [decr r]
     - [arr.(i) <- v] / [Array.set] / [Bytes.set] (and the unsafe
       variants) with a captured receiver and an index that mentions no
       closure-bound identifier
     - [Hashtbl.]/[Buffer.]/[Queue.]/[Stack.] mutating operations on a
       captured structure
     - [r.field <- v] on a captured record

   Reads are never flagged (racy reads of frozen inputs are the normal
   case), [Atomic] operations are never flagged (they are the sanctioned
   escape hatch), and [Policy.race_ok] files (the pool itself) are
   skipped — all documented in DESIGN.md §16. *)

open Parsetree

let entries =
  [ "init"; "map_array"; "map_array_ctx"; "iter_range"; "run_batch"; "run_batch_chunks" ]

let flatten lid = try Longident.flatten lid with _ -> []

let last_two path =
  match List.rev path with
  | f :: m :: _ -> (m, f)
  | [ f ] -> ("", f)
  | [] -> ("", "")

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* All identifiers bound by patterns anywhere inside [e] — parameters
   and locals alike, scope-insensitively (a variable bound in a sibling
   branch counts as bound: a deliberate false-negative edge, see
   DESIGN.md §16). *)
let bound_idents e =
  let acc = Hashtbl.create 16 in
  let iter = Ast_iterator.default_iterator in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } -> Hashtbl.replace acc txt ()
    | Ppat_alias (_, { txt; _ }) -> Hashtbl.replace acc txt ()
    | _ -> ());
    iter.Ast_iterator.pat it p
  in
  let it = { iter with Ast_iterator.pat } in
  it.Ast_iterator.expr it e;
  acc

let mentions_bound bound e =
  let found = ref false in
  let iter = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt = Lident n; _ } when Hashtbl.mem bound n -> found := true
    | _ -> ());
    iter.Ast_iterator.expr it e
  in
  let it = { iter with Ast_iterator.expr } in
  it.Ast_iterator.expr it e;
  !found

let rec render_target e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> String.concat "." (flatten txt)
  | Pexp_field (r, { txt; _ }) ->
    render_target r ^ "." ^ String.concat "." (flatten txt)
  | _ -> "<expr>"

let mutating_module_ops =
  [
    ("Hashtbl", [ "replace"; "add"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Buffer", [ "add_char"; "add_string"; "add_bytes"; "add_subbytes"; "add_substring";
                 "add_buffer"; "clear"; "reset"; "truncate" ]);
    ("Queue", [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
  ]

let indexed_setters =
  [ ("Array", "set"); ("Array", "unsafe_set"); ("Bytes", "set"); ("Bytes", "unsafe_set") ]

(* Scan one closure body handed to [Parallel.entry]; every finding is
   anchored at the mutation, with a two-step trace back through the
   submission site. *)
let scan_closure ~file ~fn ~entry ~(entry_loc : Location.t) body acc =
  let bound = bound_idents body in
  let e_line, _ = pos_of entry_loc in
  let emit (loc : Location.t) target what =
    let line, col = pos_of loc in
    acc :=
      {
        Finding.rule = Finding.Parallel_race;
        file;
        line;
        col;
        message =
          Printf.sprintf
            "%s on captured %s inside a closure handed to Parallel.%s: the write is not \
             provably domain- or item-indexed, so transcripts may depend on the pool width \
             — partition by the item index / domain slot, use Atomic, or move the write \
             outside the parallel region"
            what target entry;
        trace =
          [
            {
              Finding.s_file = file;
              s_line = e_line;
              s_fn = fn;
              s_note = Printf.sprintf "closure submitted to Parallel.%s" entry;
            };
            {
              Finding.s_file = file;
              s_line = line;
              s_fn = fn;
              s_note = Printf.sprintf "%s on captured %s" what target;
            };
          ];
      }
      :: !acc
  in
  let iter = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_setfield (recv, _, _) when not (mentions_bound bound recv) ->
      emit e.pexp_loc (render_target recv) "record-field write"
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let mf = last_two (flatten txt) in
      let positional =
        List.filter_map
          (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
          args
      in
      match (mf, positional) with
      | (("" | "Stdlib"), ":="), lhs :: _ when not (mentions_bound bound lhs) ->
        emit e.pexp_loc (render_target lhs) "ref assignment"
      | (("" | "Stdlib"), ("incr" | "decr")), lhs :: _ when not (mentions_bound bound lhs) ->
        emit e.pexp_loc (render_target lhs) "ref update"
      | (m, f), recv :: idx :: _
        when List.mem (m, f) indexed_setters
             && (not (mentions_bound bound recv))
             && not (mentions_bound bound idx) ->
        emit e.pexp_loc (render_target recv) (Printf.sprintf "unpartitioned %s.%s" m f)
      | (m, f), recv :: _
        when (match List.assoc_opt m mutating_module_ops with
             | Some ops -> List.mem f ops
             | None -> false)
             && not (mentions_bound bound recv) ->
        emit e.pexp_loc (render_target recv) (Printf.sprintf "%s.%s" m f)
      | _ -> ())
    | _ -> ());
    iter.Ast_iterator.expr it e
  in
  let it = { iter with Ast_iterator.expr } in
  it.Ast_iterator.expr it body

let rec is_syntactic_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) -> is_syntactic_function e
  | _ -> false

let check g sources =
  let acc = ref [] in
  List.iter
    (fun (file, ast) ->
      if not (Policy.matches file Policy.race_ok) then begin
        (* nearest enclosing binding name, for trace display *)
        let current = ref "(file)" in
        let iter = Ast_iterator.default_iterator in
        let value_binding it vb =
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } ->
            let saved = !current in
            current := txt;
            iter.Ast_iterator.value_binding it vb;
            current := saved
          | _ -> iter.Ast_iterator.value_binding it vb
        in
        let expr it e =
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when match last_two (flatten txt) with
                 | "Parallel", f -> List.mem f entries
                 | _ -> false -> (
            let entry = match last_two (flatten txt) with _, f -> f in
            List.iter
              (fun (_, a) ->
                if is_syntactic_function a then
                  scan_closure ~file ~fn:!current ~entry ~entry_loc:e.pexp_loc a acc
                else
                  match a.pexp_desc with
                  | Pexp_ident { txt = Lident n; _ } -> (
                    match Callgraph.resolve_in g ~file [ n ] with
                    | Some d when is_syntactic_function d.Callgraph.d_body ->
                      scan_closure ~file
                        ~fn:(String.concat "." d.Callgraph.d_path)
                        ~entry ~entry_loc:e.pexp_loc d.Callgraph.d_body acc
                    | _ -> ())
                  | _ -> ())
              args)
          | _ -> ());
          iter.Ast_iterator.expr it e
        in
        let it = { iter with Ast_iterator.expr; value_binding } in
        it.Ast_iterator.structure it ast
      end)
    sources;
  List.sort_uniq Finding.compare !acc
