(** Domain-race detector (deep pass).

    Flags writes to captured (closure-free) mutable state inside
    closures handed to the [Parallel] pool — ref assignment, indexed
    array/bytes writes whose index mentions no closure-bound
    identifier, [Hashtbl]/[Buffer]/[Queue]/[Stack] mutation, and record
    field assignment.  Closures are found both as fun literals at the
    submission site and as same-file identifiers resolved through the
    call graph.  [Atomic] operations and [Policy.race_ok] files are
    exempt; see DESIGN.md §16 for the heuristic's edges. *)

(** The [Parallel] entry points whose function arguments are scanned. *)
val entries : string list

val check : Callgraph.t -> (string * Parsetree.structure) list -> Finding.t list
