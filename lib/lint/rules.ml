open Parsetree
open Ast_iterator

type state = {
  file : string;
  mutable in_local : int;  (* nesting depth of protocol local-function bodies *)
  mutable acc : Finding.t list;
}

let emit st rule (loc : Location.t) message =
  let p = loc.loc_start in
  st.acc <-
    {
      Finding.rule;
      file = st.file;
      line = p.pos_lnum;
      col = p.pos_cnum - p.pos_bol;
      message;
      trace = [];
    }
    :: st.acc

(* Spelled by concatenation so these user-facing messages never register
   as suppression comments when the linter (or the stale-suppression
   pass) scans its own source. *)
let allow_hint rule = "(* lint:" ^ " allow " ^ rule ^ " -- reason *)"

(* [Longident.flatten] raises on functor applications; those can never
   spell the constants we ban. *)
let flatten lid = try Longident.flatten lid with _ -> []

let last_two path =
  match List.rev path with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

(* ---------- per-identifier checks ---------- *)

let partial_stdlib = [ ("List", "hd"); ("List", "nth"); ("Option", "get"); ("Array", "unsafe_get") ]
let clock_reads = [ ("Unix", "gettimeofday"); ("Unix", "time"); ("Unix", "localtime"); ("Unix", "gmtime"); ("Sys", "time") ]

(* Unix syscalls that move bytes or descriptors.  Pure Unix values
   (sockaddrs, [error_message], errno tests) are deliberately absent:
   handling a [Unix_error] is fine anywhere, issuing a syscall is not. *)
let unix_syscalls =
  [
    "socket"; "accept"; "bind"; "listen"; "connect"; "shutdown"; "select";
    "recv"; "send"; "read"; "write"; "write_substring"; "single_write";
    "close"; "openfile"; "pipe"; "fork"; "set_nonblock"; "clear_nonblock";
    "setsockopt"; "setsockopt_float"; "setsockopt_int"; "getsockname";
    "getaddrinfo"; "unlink"; "sleep"; "sleepf";
  ]

let check_ident st loc lid =
  let path = flatten lid in
  match last_two path with
  | None -> ()
  | Some ((m, f) as mf) ->
    (* view-boundary (a): view constructors outside the engine/reductions *)
    if
      (mf = ("View", "make") || mf = ("View", "of_slice"))
      && not (Policy.matches st.file Policy.view_builders)
    then
      emit st Finding.View_boundary loc
        (Printf.sprintf
           "View.%s outside the engine/reduction modules listed in view.mli: only the execution \
            engine and referee-side oracle simulations may construct views"
           f);
    (* view-boundary (b): graph-representation accessors inside a
       protocol local function — any backend, not just the materialized
       one *)
    if
      st.in_local > 0
      && List.exists
           (fun c -> c = "Graph" || c = "Graph_source" || c = "Csr" || c = "Implicit")
           path
      && m <> ""
    then
      emit st Finding.View_boundary loc
        (Printf.sprintf
           "graph access %s inside a protocol local function: locals may only read their View.t \
            (Definition 1), whichever Graph_source backend built it"
           (String.concat "." path));
    (* determinism: the global PRNG *)
    if m = "Random" then
      emit st Finding.Determinism loc
        (if f = "self_init" then
           "Random.self_init makes transcripts irreproducible; seed a Random.State explicitly"
         else
           Printf.sprintf
             "Random.%s touches the shared global PRNG (width-dependent under Parallel); thread \
              a seeded Random.State instead"
             f);
    (* determinism: wall-clock reads *)
    if List.mem mf clock_reads && not (Policy.matches st.file Policy.clock_ok) then
      emit st Finding.Determinism loc
        (Printf.sprintf
           "wall-clock read %s.%s outside Metrics' injected clock breaks run reproducibility" m f);
    (* determinism: socket / descriptor syscalls outside the transport *)
    if m = "Unix" && List.mem f unix_syscalls && not (Policy.matches st.file Policy.unix_ok) then
      emit st Finding.Determinism loc
        (Printf.sprintf
           "Unix.%s outside the serve transport: socket and descriptor syscalls are confined to \
            lib/serve's daemon/client so model runs stay kernel-free and reproducible"
           f);
    (* determinism: raw domains *)
    if mf = ("Domain", "spawn") && not (Policy.matches st.file Policy.spawn_ok) then
      emit st Finding.Determinism loc
        "raw Domain.spawn outside Parallel: use the deterministic domain pool";
    (* referee-totality: partial stdlib + failwith *)
    if not (Policy.matches st.file Policy.totality_exempt) then begin
      if List.mem mf partial_stdlib then
        emit st Finding.Referee_totality loc
          (Printf.sprintf
             "partial function %s.%s: referees must be total — use a total variant or justify \
              with %s"
             m f
             (allow_hint "referee-totality"));
      if f = "failwith" && (m = "" || m = "Stdlib") then
        emit st Finding.Referee_totality loc
          ("failwith in library code: referees must be total — raise a typed exception, return a \
            verdict, or justify with "
          ^ allow_hint "referee-totality")
    end;
    (* bit-accounting: raw byte construction *)
    if (m = "Bytes" || m = "Buffer") && not (Policy.matches st.file Policy.bytes_ok) then
      emit st Finding.Bit_accounting loc
        (Printf.sprintf
           "raw %s.%s: message bytes are constructed via Message / Refnet_bits only, so every \
            bit is accounted against the theorem budgets"
           m f)

(* ---------- span-grammar ---------- *)

(* Instantiates a format literal with placeholder arguments ("%d" -> 1,
   "%s" -> "", ...) so sprintf-built labels can be classified too.
   [None] when the format uses a conversion we do not model. *)
let instantiate_format fmt =
  let n = String.length fmt in
  let b = Buffer.create n in
  let exception Unmodelled in
  let rec go i =
    if i >= n then Some (Buffer.contents b)
    else if fmt.[i] <> '%' then begin
      Buffer.add_char b fmt.[i];
      go (i + 1)
    end
    else begin
      let j = ref (i + 1) in
      while
        !j < n && (match fmt.[!j] with '-' | '+' | ' ' | '#' | '0' .. '9' | '.' -> true | _ -> false)
      do
        incr j
      done;
      if !j >= n then None
      else begin
        (match fmt.[!j] with
        | 'd' | 'i' | 'u' | 'x' | 'X' | 'o' -> Buffer.add_char b '1'
        | 's' -> ()
        | 'b' | 'B' -> Buffer.add_string b "true"
        | 'c' -> Buffer.add_char b 'c'
        | 'e' | 'f' | 'g' | 'F' -> Buffer.add_string b "1.0"
        | '%' -> Buffer.add_char b '%'
        | _ -> raise Unmodelled);
        go (!j + 1)
      end
    end
  in
  try go 0 with Unmodelled -> None

let check_label_string st loc ~display label =
  match Core.Bound_audit.classify_label label with
  | Core.Bound_audit.Budgeted _ | Core.Bound_audit.Exempt -> ()
  | Core.Bound_audit.Malformed reason ->
    emit st Finding.Span_grammar loc
      (Printf.sprintf
         "span label %S does not parse under Bound_audit's grammar (%s) and would silently \
          escape the theorem audit"
         display reason)

(* A label-position expression: a literal, or sprintf applied to a
   literal format.  Anything else (runtime concatenation) is out of
   reach for a static pass and skipped. *)
let check_label_expr st e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) ->
    check_label_string st e.pexp_loc ~display:s s
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (Asttypes.Nolabel, fmt) :: _)
    when match last_two (flatten txt) with Some (_, "sprintf") -> true | _ -> false -> (
    match fmt.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> (
      match instantiate_format s with
      | Some inst -> check_label_string st fmt.pexp_loc ~display:s inst
      | None -> ())
    | _ -> ())
  | _ -> ()

let is_rename e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match last_two (flatten txt) with Some ("Protocol", "rename") -> true | _ -> false)
  | _ -> false

(* ---------- the walk ---------- *)

let last_component lid = match List.rev (flatten lid) with c :: _ -> Some c | [] -> None

let check ~file ast =
  let st = { file; in_local = 0; acc = [] } in
  let in_local_scope f =
    st.in_local <- st.in_local + 1;
    f ();
    st.in_local <- st.in_local - 1
  in
  let iter = Ast_iterator.default_iterator in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident st loc txt
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      when not (Policy.matches st.file Policy.totality_exempt) ->
      emit st Finding.Referee_totality e.pexp_loc
        ("assert false: referees must be total — make the case impossible by construction or \
          justify with "
        ^ allow_hint "referee-totality")
    | Pexp_apply (f, (Asttypes.Nolabel, arg) :: _) when is_rename f -> check_label_expr st arg
    | Pexp_record (fields, _) ->
      List.iter
        (fun ({ Location.txt; _ }, value) ->
          match last_component txt with
          | Some ("name" | "label") -> check_label_expr st value
          | _ -> ())
        fields
    | _ -> ());
    match e.pexp_desc with
    | Pexp_record (fields, base) ->
      Option.iter (it.expr it) base;
      List.iter
        (fun ({ Location.txt; _ }, value) ->
          match last_component txt with
          (* [local] is the one-round node function; [send]/[receive]
             are the Bcc per-round node functions — all three run on a
             node and may only read their View.t.  The referee-side
             fields ([init], [r_*]) are not scoped: referee oracles
             legitimately probe graph representations. *)
          | Some ("local" | "send" | "receive") -> in_local_scope (fun () -> it.expr it value)
          | _ -> it.expr it value)
        fields
    | _ -> iter.expr it e
  in
  let value_binding it vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = "local" | "send" | "receive"; _ } ->
      it.pat it vb.pvb_pat;
      in_local_scope (fun () -> it.expr it vb.pvb_expr)
    | Ppat_var { txt = "name" | "label"; _ } ->
      check_label_expr st vb.pvb_expr;
      iter.value_binding it vb
    | _ -> iter.value_binding it vb
  in
  let it = { iter with expr; value_binding } in
  it.structure it ast;
  List.rev st.acc
