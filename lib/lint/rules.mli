(** The five invariant rules, as one pass over a parsed implementation.

    Rules work purely on the Parsetree — no typing environment — so
    module paths are matched syntactically ([View.make],
    [Core.View.make], [Stdlib.Random.int] all match) and fixture files
    may reference undefined names freely.  Suppressions and policy
    filtering happen in {!Driver}; this module reports every raw hit. *)

(** [check ~file ast] runs every rule over [ast], attributing findings
    to [file] ('/'-normalized; policy allowlists match against it). *)
val check : file:string -> Parsetree.structure -> Finding.t list
