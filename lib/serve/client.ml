type t = {
  fd : Unix.file_descr;
  decoder : Wire.decoder;
  rbuf : Bytes.t;
  mutable next_open_id : int;
  mutable conn_trace : int64;
}

type verdict = {
  status : Frame.status;
  timeout : Frame.timeout_kind;
  payload : string;
  missing : int;
  malformed : int;
  duplicated : int;
  undetermined : int;
  trace : int64;
}

let connect spec =
  let domain =
    match spec with
    | Daemon.Tcp _ -> Unix.PF_INET
    | Daemon.Unix_sock _ -> Unix.PF_UNIX
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Daemon.sockaddr_of_listen spec) with
  | () ->
      Ok
        {
          fd;
          decoder = Wire.decoder ();
          rbuf = Bytes.create 65536;
          next_open_id = 1;
          conn_trace = 0L;
        }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s"
           (Daemon.listen_to_string spec)
           (Unix.error_message err))

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_all c s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring c.fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (err, _, _) ->
          Error ("write: " ^ Unix.error_message err)
  in
  go 0

let rec recv_frame c =
  match Wire.next c.decoder with
  | Wire.Frame { kind; payload } -> Frame.decode_server ~kind payload
  | Wire.Corrupt detail -> Error ("corrupt server frame: " ^ detail)
  | Wire.Awaiting -> (
      match Unix.read c.fd c.rbuf 0 (Bytes.length c.rbuf) with
      | 0 -> Error "server closed the connection"
      | n ->
          Wire.push c.decoder c.rbuf ~off:0 ~len:n;
          recv_frame c
      | exception Unix.Unix_error (err, _, _) ->
          Error ("read: " ^ Unix.error_message err))

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let handshake c =
  let* () = send_all c (Frame.encode_client (Frame.Hello { version = Frame.version })) in
  let* frame = recv_frame c in
  match frame with
  | Frame.Welcome { trace; _ } ->
      c.conn_trace <- trace;
      Ok ()
  | Frame.Error { code; detail } ->
      Error
        (Printf.sprintf "server error %s: %s"
           (Frame.error_code_to_string code)
           detail)
  | _ -> Error "expected Welcome"

let conn_trace c = c.conn_trace

let run_session c ?(trace = 0L) ~protocol ~n msgs =
  let open_id = c.next_open_id in
  c.next_open_id <- open_id + 1;
  let* () =
    send_all c (Frame.encode_client (Frame.Open { open_id; protocol; n; trace }))
  in
  let* opened = recv_frame c in
  let* session, credit =
    match opened with
    | Frame.Opened { open_id = oid; session; credit } when oid = open_id ->
        Ok (session, credit)
    | Frame.Rejected { reason; retry_after_ms; detail; _ } ->
        Error
          (Printf.sprintf "rejected: %s (retry after %d ms)%s"
             (Frame.reject_reason_to_string reason)
             retry_after_ms
             (if detail = "" then "" else ": " ^ detail))
    | Frame.Error { code; detail } ->
        Error
          (Printf.sprintf "server error %s: %s"
             (Frame.error_code_to_string code)
             detail)
    | _ -> Error "expected Opened"
  in
  (* stream messages under the credit window, then finish and wait.  A
     verdict can arrive early (server-side timeout mid-stream): stop
     sending and return it. *)
  let window = ref credit in
  let next_event () =
    let* frame = recv_frame c in
    match frame with
    | Frame.Credit { session = sid; credit } when sid = session ->
        window := !window + credit;
        Ok None
    | Frame.Verdict
        { session = sid; status; timeout; payload; missing; malformed;
          duplicated; undetermined; trace }
      when sid = session ->
        Ok
          (Some
             { status; timeout; payload; missing; malformed; duplicated;
               undetermined; trace })
    | Frame.Error { code; detail } ->
        Error
          (Printf.sprintf "server error %s: %s"
             (Frame.error_code_to_string code)
             detail)
    | _ -> Error "unexpected frame mid-session"
  in
  let rec send_msgs rest =
    match rest with
    | [] -> Ok None
    | (node, payload) :: tl ->
        if !window = 0 then
          let* v = next_event () in
          match v with Some _ -> Ok v | None -> send_msgs rest
        else
          let* () =
            send_all c
              (Frame.encode_client (Frame.Msg { session; node; payload }))
          in
          window := !window - 1;
          send_msgs tl
  in
  let* early = send_msgs msgs in
  match early with
  | Some v -> Ok v
  | None ->
      let* () = send_all c (Frame.encode_client (Frame.Finish { session })) in
      let rec await () =
        let* v = next_event () in
        match v with Some v -> Ok v | None -> await ()
      in
      await ()
