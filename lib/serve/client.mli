(** A minimal blocking client for the serve protocol — enough for the
    CI probe ([refnet serve --probe]) and integration tests.  It speaks
    the handshake, opens one session at a time, respects the credit
    window, and returns the typed verdict. *)

type t

val connect : Daemon.listen -> (t, string) result

(** [handshake c] sends [Hello] and waits for [Welcome]. *)
val handshake : t -> (unit, string) result

type verdict = {
  status : Frame.status;
  timeout : Frame.timeout_kind;
  payload : string;
  missing : int;
  malformed : int;
  duplicated : int;
  undetermined : int;
}

(** [run_session c ~protocol ~n msgs] opens a session, streams the
    [(node, message)] list under backpressure, finishes, and waits for
    the verdict.  Any rejection, server error or transport failure comes
    back as [Error]. *)
val run_session :
  t ->
  protocol:string ->
  n:int ->
  (int * Core.Message.t) list ->
  (verdict, string) result

val close : t -> unit
