(** A minimal blocking client for the serve protocol — enough for the
    CI probe ([refnet serve --probe]) and integration tests.  It speaks
    the handshake, opens one session at a time, respects the credit
    window, and returns the typed verdict. *)

type t

val connect : Daemon.listen -> (t, string) result

(** [handshake c] sends [Hello] and waits for [Welcome], capturing the
    session trace id the server minted for this connection. *)
val handshake : t -> (unit, string) result

(** The trace id from [Welcome]; [0L] before {!handshake}. *)
val conn_trace : t -> int64

type verdict = {
  status : Frame.status;
  timeout : Frame.timeout_kind;
  payload : string;
  missing : int;
  malformed : int;
  duplicated : int;
  undetermined : int;
  trace : int64;  (** the session trace id the verdict ran under *)
}

(** [run_session c ?trace ~protocol ~n msgs] opens a session, streams
    the [(node, message)] list under backpressure, finishes, and waits
    for the verdict.  [trace] (default [0L]) is echoed in the [Open]
    frame: [0L] adopts the connection's minted id; a non-zero id is a
    resume attempt, which a restarted daemon holding crash-dump
    evidence for that id refuses with the evidence summary.  Any
    rejection, server error or transport failure comes back as
    [Error]. *)
val run_session :
  t ->
  ?trace:int64 ->
  protocol:string ->
  n:int ->
  (int * Core.Message.t) list ->
  (verdict, string) result

val close : t -> unit
