open Core

type listen = Tcp of string * int | Unix_sock of string

let parse_listen s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad listen spec %S (tcp:PORT or unix:PATH)" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error "unix: listen spec needs a path"
          else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> (
              match int_of_string_opt rest with
              | Some port when port >= 0 && port < 65536 ->
                  Ok (Tcp ("127.0.0.1", port))
              | _ -> Error (Printf.sprintf "bad tcp port %S" rest))
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some port when port >= 0 && port < 65536 -> Ok (Tcp (host, port))
              | _ -> Error (Printf.sprintf "bad tcp port %S" port)))
      | _ -> Error (Printf.sprintf "unknown listen scheme %S" scheme))

let listen_to_string = function
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  | Unix_sock p -> "unix:" ^ p

type opts = {
  listen : listen;
  metrics_listen : listen option;
  metrics_file : string option;
  engine_cfg : Engine.config;
  trace : Trace.sink;
  metrics : Metrics.t option;
  flight_dir : string option;
  flight_capacity : int option;
  tick_interval_s : float;
  max_run_s : float option;
}

let default_opts ~listen =
  {
    listen;
    metrics_listen = None;
    metrics_file = None;
    engine_cfg = Engine.default_config;
    trace = Trace.null;
    metrics = None;
    flight_dir = None;
    flight_capacity = None;
    tick_interval_s = 0.02;
    max_run_s = None;
  }

let sockaddr_of_listen = function
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          (* lint: allow blocking-call -- bind-time resolution: runs once while opening the listener, before the loop serves anyone *)
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> Unix.inet_addr_loopback)
      in
      Unix.ADDR_INET (addr, port)
  | Unix_sock path -> Unix.ADDR_UNIX path

let open_listener spec =
  let domain =
    match spec with Tcp _ -> Unix.PF_INET | Unix_sock _ -> Unix.PF_UNIX
  in
  (match spec with
  | Unix_sock path when Sys.file_exists path -> (
      (* a stale socket file from a previous crash-only exit *)
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     (match spec with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind fd (sockaddr_of_listen spec);
     Unix.listen fd 128;
     Unix.set_nonblock fd;
     Ok fd
   with Unix.Unix_error (err, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     Error
       (Printf.sprintf "cannot listen on %s: %s" (listen_to_string spec)
          (Unix.error_message err)))

let write_metrics_file m path =
  let snap = Metrics.snapshot m in
  let text =
    if Filename.check_suffix path ".prom" then Metrics.to_prometheus snap
    else Metrics.to_json snap
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

(* Answer one Prometheus scrape.  Scrapers send a full GET immediately,
   so a short blocking read-then-respond on the event loop is fine; the
   receive timeout bounds the damage a stalled scraper can do. *)
let answer_scrape metrics fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2;
         let buf = Bytes.create 1024 in
         ignore (Unix.read fd buf 0 (Bytes.length buf))
       with Unix.Unix_error _ -> ());
      let body =
        match metrics with
        | Some m -> Metrics.to_prometheus (Metrics.snapshot m)
        | None -> "# metrics disabled\n"
      in
      let resp =
        Printf.sprintf
          "HTTP/1.0 200 OK\r\n\
           Content-Type: text/plain; version=0.0.4\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          (String.length body) body
      in
      try ignore (Unix.write_substring fd resp 0 (String.length resp))
      with Unix.Unix_error _ -> ())

type sconn = {
  fd : Unix.file_descr;
  cid : Engine.conn_id;
  mutable pending : string; (* bytes accepted from the engine, unsent *)
  mutable sent : int;
}

(* ---------- flight recorder plumbing ---------- *)

let is_flight_file name =
  String.length name > 7
  && String.sub name 0 7 = "flight-"
  && Filename.check_suffix name ".flight"

(* Scan [dir] for dumps left by previous incarnations and list the
   sessions they show mid-flight.  A dump that fails to read or decode
   contributes what it can: decode is total, I/O errors skip the file. *)
let boot_scan dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names |> List.sort compare
      |> List.filter is_flight_file
      |> List.concat_map (fun name ->
             match Flight.decode_file (Filename.concat dir name) with
             | Ok d -> Flight.open_traces d.Flight.d_items
             | Error _ -> [])

let run opts =
  let drain_requested = ref false in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain_requested := true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> drain_requested := true))
  in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  match open_listener opts.listen with
  | Error msg ->
      restore ();
      prerr_endline ("refnet serve: " ^ msg);
      1
  | Ok listener -> (
      let metrics_listener =
        match opts.metrics_listen with
        | None -> Ok None
        | Some spec -> (
            match open_listener spec with
            | Ok fd -> Ok (Some fd)
            | Error msg -> Error msg)
      in
      match metrics_listener with
      | Error msg ->
          (try Unix.close listener with Unix.Unix_error _ -> ());
          restore ();
          prerr_endline ("refnet serve: " ^ msg);
          1
      | Ok metrics_listener ->
          let flight =
            match opts.flight_dir with
            | None -> None
            | Some dir ->
                (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
                Some (Flight.create ?capacity:opts.flight_capacity (), dir)
          in
          let engine =
            Engine.create ?metrics:opts.metrics ~trace:opts.trace
              ?flight:(Option.map fst flight) opts.engine_cfg
          in
          (* refuse-with-evidence: sessions a previous incarnation left
             mid-flight are answered [Rejected {reason = Evidence}] *)
          (match flight with
          | None -> ()
          | Some (_, dir) -> Engine.load_evidence engine (boot_scan dir));
          let dump_seq = ref 0 in
          let write_dump () =
            match flight with
            | None -> ()
            | Some (f, dir) ->
                incr dump_seq;
                let path =
                  Filename.concat dir
                    (Printf.sprintf "flight-%d-%d.flight" (Unix.getpid ())
                       !dump_seq)
                in
                (match Flight.dump_to_file f path with
                | Ok () -> ()
                | Error msg ->
                    prerr_endline ("refnet serve: flight dump failed: " ^ msg))
          in
          let dump_requested = ref false in
          let old_usr1 =
            match flight with
            | None -> None
            | Some _ ->
                Some
                  (Sys.signal Sys.sigusr1
                     (Sys.Signal_handle (fun _ -> dump_requested := true)))
          in
          (* the final flush also fires on the CLI's diagnostic exit
             paths; idempotent so the normal end-of-run dump wins *)
          let final_dumped = ref false in
          let final_dump () =
            if not !final_dumped then begin
              final_dumped := true;
              write_dump ()
            end
          in
          if flight <> None then at_exit final_dump;
          let last_anomalies = ref 0 in
          let flight_gauges =
            match (opts.metrics, flight) with
            | Some m, Some _ ->
                Some
                  ( Metrics.Gauge.gauge m "refnet_flight_recorded_total",
                    Metrics.Gauge.gauge m "refnet_flight_drops_total",
                    Metrics.Gauge.gauge m "refnet_flight_occupancy" )
            | _ -> None
          in
          let gc_gauges =
            match opts.metrics with
            | None -> None
            | Some m ->
                Some
                  ( Metrics.Gauge.gauge m "refnet_gc_minor_words",
                    Metrics.Gauge.gauge m "refnet_gc_major_words",
                    Metrics.Gauge.gauge m "refnet_gc_heap_words" )
          in
          let refresh_runtime_gauges () =
            (match gc_gauges with
            | None -> ()
            | Some (g_minor, g_major, g_heap) ->
                let q = Gc.quick_stat () in
                Metrics.Gauge.set g_minor q.Gc.minor_words;
                Metrics.Gauge.set g_major q.Gc.major_words;
                Metrics.Gauge.set g_heap (float_of_int q.Gc.heap_words));
            match (flight_gauges, flight) with
            | Some (g_rec, g_drop, g_occ), Some (f, _) ->
                Metrics.Gauge.set g_rec (float_of_int (Flight.recorded f));
                Metrics.Gauge.set g_drop (float_of_int (Flight.dropped f));
                Metrics.Gauge.set g_occ (float_of_int (Flight.occupancy f))
            | _ -> ()
          in
          (* dump on every anomaly the engine counts — a quarantine
             (poison frame, credit violation), an inconclusive verdict
             or an evidence refusal — so the rings reach disk while the
             story they tell is still fresh *)
          let flight_heartbeat () =
            match flight with
            | None -> ()
            | Some _ ->
                let s = Engine.stats engine in
                let anomalies =
                  s.Engine.quarantines + s.Engine.inconclusive
                  + s.Engine.rej_evidence
                in
                if !dump_requested || anomalies > !last_anomalies then begin
                  dump_requested := false;
                  last_anomalies := anomalies;
                  write_dump ()
                end
          in
          let conns : (Unix.file_descr, sconn) Hashtbl.t = Hashtbl.create 64 in
          let started = Unix.gettimeofday () in
          let drain_started = ref None in
          let accepting = ref true in
          let rbuf = Bytes.create 65536 in
          let drop sc =
            Hashtbl.remove conns sc.fd;
            Engine.close_conn engine sc.cid;
            try Unix.close sc.fd with Unix.Unix_error _ -> ()
          in
          let pump_out sc =
            let fresh = Engine.take_output engine sc.cid in
            if fresh <> "" then
              sc.pending <-
                (if sc.sent = 0 then sc.pending ^ fresh
                 else
                   String.sub sc.pending sc.sent
                     (String.length sc.pending - sc.sent)
                   ^ fresh);
            if fresh <> "" && sc.sent > 0 then sc.sent <- 0;
            if sc.sent < String.length sc.pending then begin
              match
                Unix.write_substring sc.fd sc.pending sc.sent
                  (String.length sc.pending - sc.sent)
              with
              | n -> sc.sent <- sc.sent + n
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                ->
                  ()
              | exception Unix.Unix_error _ -> drop sc
            end
          in
          let flushed sc = sc.sent >= String.length sc.pending in
          let finished = ref false in
          let exit_code = ref 0 in
          while not !finished do
            let now = Unix.gettimeofday () in
            (match opts.max_run_s with
            | Some limit when (not !drain_requested) && now -. started >= limit
              ->
                drain_requested := true
            | _ -> ());
            if !drain_requested && !drain_started = None then begin
              drain_started := Some now;
              Engine.begin_drain engine;
              accepting := false
            end;
            (* a wedged drain still exits: crash-only means we prefer a
               clean-enough exit over hanging forever *)
            (match !drain_started with
            | Some t0
              when now -. t0
                   >= opts.engine_cfg.Engine.deadline_s
                      +. opts.engine_cfg.Engine.idle_timeout_s +. 2.0 ->
                finished := true
            | _ -> ());
            if not !finished then begin
              let rds =
                (if !accepting then [ listener ] else [])
                @ (match metrics_listener with Some fd -> [ fd ] | None -> [])
                @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
              in
              let wrs =
                Hashtbl.fold
                  (fun fd sc acc -> if flushed sc then acc else fd :: acc)
                  conns []
              in
              let readable, writable, _ =
                try Unix.select rds wrs [] opts.tick_interval_s
                with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
              in
              List.iter
                (fun fd ->
                  if fd = listener then begin
                    match Unix.accept listener with
                    | client_fd, _ -> (
                        Unix.set_nonblock client_fd;
                        match Engine.open_conn engine with
                        | Ok cid ->
                            Hashtbl.replace conns client_fd
                              { fd = client_fd; cid; pending = ""; sent = 0 }
                        | Error _ -> (
                            try Unix.close client_fd
                            with Unix.Unix_error _ -> ()))
                    | exception
                        Unix.Unix_error
                          ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                        ()
                    | exception Unix.Unix_error _ -> ()
                  end
                  else if Some fd = metrics_listener then begin
                    match Unix.accept fd with
                    | scrape_fd, _ -> answer_scrape opts.metrics scrape_fd
                    | exception Unix.Unix_error _ -> ()
                  end
                  else
                    match Hashtbl.find_opt conns fd with
                    | None -> ()
                    | Some sc -> (
                        match Unix.read sc.fd rbuf 0 (Bytes.length rbuf) with
                        | 0 -> drop sc
                        | n -> Engine.feed_bytes engine sc.cid rbuf ~off:0 ~len:n
                        | exception
                            Unix.Unix_error
                              ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                            ()
                        | exception Unix.Unix_error _ -> drop sc))
                readable;
              ignore writable;
              Engine.tick engine;
              flight_heartbeat ();
              refresh_runtime_gauges ();
              let to_drop = ref [] in
              Hashtbl.iter
                (fun _ sc ->
                  pump_out sc;
                  if flushed sc && Engine.wants_close engine sc.cid then
                    to_drop := sc :: !to_drop)
                conns;
              List.iter drop !to_drop;
              if
                !drain_started <> None
                && Engine.idle engine
                && Hashtbl.fold (fun _ sc acc -> acc && flushed sc) conns true
              then finished := true
            end
          done;
          Hashtbl.iter
            (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
            conns;
          (try Unix.close listener with Unix.Unix_error _ -> ());
          (match metrics_listener with
          | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
          | None -> ());
          (match opts.listen with
          | Unix_sock path -> (
              try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
          | Tcp _ -> ());
          final_dump ();
          (match (opts.metrics, opts.metrics_file) with
          | Some m, Some path -> write_metrics_file m path
          | _ -> ());
          (match old_usr1 with
          | Some behaviour -> Sys.set_signal Sys.sigusr1 behaviour
          | None -> ());
          restore ();
          !exit_code)
