(** Socket transport for the serve {!Engine}: accept loop, non-blocking
    reads/writes, the Prometheus metrics listener, and graceful drain.

    Exit semantics (the [refnet serve] contract):
    - [0] — clean shutdown: SIGTERM/SIGINT received, admission stopped,
      in-flight sessions finished or timed out, sinks flushed.
    - [1] — could not start (address in use, bad listen spec).
    The daemon never exits for anything a client does. *)

type listen = Tcp of string * int | Unix_sock of string

(** [parse_listen s] accepts ["tcp:HOST:PORT"], ["tcp:PORT"] (binds
    127.0.0.1) and ["unix:PATH"]. *)
val parse_listen : string -> (listen, string) result

val listen_to_string : listen -> string

(** [sockaddr_of_listen l] resolves the bind/connect address (used by
    {!Client}). *)
val sockaddr_of_listen : listen -> Unix.sockaddr

type opts = {
  listen : listen;
  metrics_listen : listen option;
      (** serve a Prometheus text snapshot to any HTTP GET here *)
  metrics_file : string option;
      (** also write a final snapshot on shutdown ([.prom] extension
          selects Prometheus text, anything else JSON) *)
  engine_cfg : Engine.config;
  trace : Core.Trace.sink;
  metrics : Core.Metrics.t option;
  flight_dir : string option;
      (** attach a {!Core.Flight} recorder and keep crash evidence in
          this directory (created if missing).  Dumps are written to
          [flight-<pid>-<seq>.flight] on every engine anomaly
          (quarantine, inconclusive verdict, evidence refusal), on
          SIGUSR1, and once at exit (including the CLI's diagnostic
          exit paths, via [at_exit]).  On boot the directory is scanned
          and sessions found mid-flight are loaded as evidence: a
          client resuming such a trace id gets
          [Rejected {reason = Evidence}] with the summary.  With
          metrics attached, [refnet_flight_recorded_total],
          [refnet_flight_drops_total], [refnet_flight_occupancy] and
          [refnet_gc_*] gauges refresh every tick. *)
  flight_capacity : int option;  (** per-domain ring entries *)
  tick_interval_s : float;
  max_run_s : float option;
      (** stop (as if SIGTERM) after this long — used by CI smoke tests
          so a wedged daemon cannot hang the job *)
}

val default_opts : listen:listen -> opts

(** [run opts] blocks until shutdown and returns the exit code. *)
val run : opts -> int
