open Core

type config = {
  max_sessions : int;
  max_sessions_per_conn : int;
  max_conns : int;
  session_credit : int;
  max_frame_bytes : int;
  max_output_bytes : int;
  deadline_s : float;
  idle_timeout_s : float;
  retry_after_ms : int;
  domains : int option;
  par_threshold : int;
}

let default_config =
  {
    max_sessions = 4096;
    max_sessions_per_conn = 64;
    max_conns = 1024;
    session_credit = 256;
    max_frame_bytes = 1 lsl 20;
    max_output_bytes = 4 lsl 20;
    deadline_s = 30.;
    idle_timeout_s = 10.;
    retry_after_ms = 250;
    domains = None;
    par_threshold = 4;
  }

type conn_id = int

(* A session's referee fold, output type hidden behind its renderer. *)
type sess_state =
  | Sess : {
      feed : 'a Core.Verdict.t Core.Protocol.feed;
      render : 'a -> string;
    }
      -> sess_state

type finish_cause = Client_finish | Idle_expire | Deadline_expire

type session = {
  sid : int;
  s_conn : conn_id;
  s_trace : int64;
  s_label : string;
  s_n : int;
  mutable state : sess_state;
  mutable pending : (int * Message.t) list; (* reversed arrival order *)
  mutable pending_count : int;
  mutable window : int; (* Msg frames the client may still send *)
  mutable finish_cause : finish_cause option;
  mutable dirty : bool;
  mutable absorb_log : (int * int) list; (* (id, bits), reversed; traced *)
  mutable max_bits : int;
  mutable total_bits : int;
  opened_at : float;
  mutable last_activity : float;
}

type conn = {
  cid : conn_id;
  decoder : Wire.decoder;
  out : Buffer.t;
  mutable c_trace : int64; (* minted at Hello; 0L before the handshake *)
  mutable c_sessions : int list;
  mutable quarantined : bool;
  mutable close_after_flush : bool;
}

type stats = {
  conns_opened : int;
  sessions_opened : int;
  decided : int;
  degraded : int;
  inconclusive : int;
  aborted : int;
  sheds : int;
  drain_rejections : int;
  rej_unknown_protocol : int;
  rej_bad_n : int;
  rej_session_limit : int;
  rej_evidence : int;
  quarantines : int;
  quarantine_escapes : int;
  late_frames : int;
  timeouts_idle : int;
  timeouts_deadline : int;
  frames : int;
  bytes_in : int;
  live_sessions : int;
  queued_msgs : int;
}

type instruments = {
  i_sessions : Metrics.Counter.counter;
  i_decided : Metrics.Counter.counter;
  i_degraded : Metrics.Counter.counter;
  i_inconclusive : Metrics.Counter.counter;
  i_aborts : Metrics.Counter.counter;
  i_sheds : Metrics.Counter.counter;
  i_drains : Metrics.Counter.counter;
  i_quarantines : Metrics.Counter.counter;
  i_escapes : Metrics.Counter.counter;
  i_late : Metrics.Counter.counter;
  i_timeout_idle : Metrics.Counter.counter;
  i_timeout_deadline : Metrics.Counter.counter;
  i_frames : Metrics.Counter.counter;
  i_bytes : Metrics.Counter.counter;
  i_live : Metrics.Gauge.gauge;
  i_queue : Metrics.Gauge.gauge;
  i_reject : Frame.reject_reason -> Metrics.Counter.counter;
}

type t = {
  cfg : config;
  clock : unit -> float;
  trace : Trace.sink;
  metrics : Metrics.t option;
  inst : instruments option;
  flight : Flight.t option;
  evidence : (int64, string) Hashtbl.t;
      (* trace ids found mid-flight in boot-scanned crash dumps; a
         client echoing one in [Open.trace] is refused with the summary *)
  trace_seed : int64;
  conns : (conn_id, conn) Hashtbl.t;
  sessions : (int, session) Hashtbl.t;
  mutable trace_ctr : int;
  mutable next_cid : int;
  mutable next_sid : int;
  mutable dirty_sids : int list;
  mutable live_sessions : int;
  mutable queued_msgs : int;
  mutable is_draining : bool;
  (* counters (also mirrored into [inst] when metrics are attached) *)
  mutable n_conns_opened : int;
  mutable n_sessions : int;
  mutable n_decided : int;
  mutable n_degraded : int;
  mutable n_inconclusive : int;
  mutable n_aborted : int;
  mutable n_sheds : int;
  mutable n_drain_rej : int;
  mutable n_rej_unknown : int;
  mutable n_rej_bad_n : int;
  mutable n_rej_session_limit : int;
  mutable n_rej_evidence : int;
  mutable n_quarantines : int;
  mutable n_escapes : int;
  mutable n_late : int;
  mutable n_timeout_idle : int;
  mutable n_timeout_deadline : int;
  mutable n_frames : int;
  mutable n_bytes : int;
}

let make_instruments m =
  let c = Metrics.Counter.counter m in
  let verdict outcome =
    c (Metrics.series "refnet_serve_verdicts_total" [ ("outcome", outcome) ])
  in
  let timeout kind =
    c (Metrics.series "refnet_serve_timeouts_total" [ ("kind", kind) ])
  in
  let rej reason =
    c
      (Metrics.series "refnet_serve_rejects_total"
         [ ("reason", Frame.reject_reason_to_string reason) ])
  in
  (* pre-create all six series so a clean run still exports them at 0 *)
  let r_overloaded = rej Frame.Overloaded in
  let r_draining = rej Frame.Draining in
  let r_unknown = rej Frame.Unknown_protocol in
  let r_bad_n = rej Frame.Bad_n in
  let r_session_limit = rej Frame.Session_limit in
  let r_evidence = rej Frame.Evidence in
  {
    i_sessions = c "refnet_serve_sessions_total";
    i_decided = verdict "decided";
    i_degraded = verdict "degraded";
    i_inconclusive = verdict "inconclusive";
    i_aborts = c "refnet_serve_aborts_total";
    i_sheds = c "refnet_serve_sheds_total";
    i_drains = c "refnet_serve_drain_rejections_total";
    i_quarantines = c "refnet_serve_quarantines_total";
    i_escapes = c "refnet_serve_quarantine_escapes_total";
    i_late = c "refnet_serve_late_frames_total";
    i_timeout_idle = timeout "idle";
    i_timeout_deadline = timeout "deadline";
    i_frames = c "refnet_serve_frames_total";
    i_bytes = c "refnet_serve_bytes_total";
    i_live = Metrics.Gauge.gauge m "refnet_serve_sessions_live";
    i_queue = Metrics.Gauge.gauge m "refnet_serve_queue_depth";
    i_reject =
      (function
      | Frame.Overloaded -> r_overloaded
      | Frame.Draining -> r_draining
      | Frame.Unknown_protocol -> r_unknown
      | Frame.Bad_n -> r_bad_n
      | Frame.Session_limit -> r_session_limit
      | Frame.Evidence -> r_evidence);
  }

(* splitmix64 finalizer: seeds and advances the trace-id sequence.
   Deterministic given the clock, so a virtual-clock engine mints the
   same ids every run. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?clock ?(trace = Trace.null) ?metrics ?flight cfg =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    cfg;
    clock;
    trace;
    metrics;
    inst = Option.map make_instruments metrics;
    flight;
    evidence = Hashtbl.create 16;
    trace_seed = mix64 (Int64.of_float (clock () *. 1e6));
    conns = Hashtbl.create 64;
    sessions = Hashtbl.create 256;
    trace_ctr = 0;
    next_cid = 1;
    next_sid = 1;
    dirty_sids = [];
    live_sessions = 0;
    queued_msgs = 0;
    is_draining = false;
    n_conns_opened = 0;
    n_sessions = 0;
    n_decided = 0;
    n_degraded = 0;
    n_inconclusive = 0;
    n_aborted = 0;
    n_sheds = 0;
    n_drain_rej = 0;
    n_rej_unknown = 0;
    n_rej_bad_n = 0;
    n_rej_session_limit = 0;
    n_rej_evidence = 0;
    n_quarantines = 0;
    n_escapes = 0;
    n_late = 0;
    n_timeout_idle = 0;
    n_timeout_deadline = 0;
    n_frames = 0;
    n_bytes = 0;
  }

let bump t f = match t.inst with None -> () | Some i -> Metrics.Counter.incr (f i)

(* ---------- session tracing + flight recording ---------- *)

let mint_trace t =
  t.trace_ctr <- t.trace_ctr + 1;
  let id = mix64 (Int64.add t.trace_seed (Int64.of_int t.trace_ctr)) in
  if Int64.equal id 0L then 1L else id

let fl_event t ~trace ev =
  match t.flight with None -> () | Some f -> Flight.record f ~trace ev

let fl_note t ~trace ~code ~detail =
  match t.flight with None -> () | Some f -> Flight.note f ~trace ~code ~detail

(* Anomalies carry the session trace id as a label so one scrape links
   a quarantine or evidence refusal to its flight dump.  Only these
   low-frequency series get the dimension — per-trace labels on the hot
   counters would explode the registry. *)
let anomaly t ~kind ~trace =
  if not (Int64.equal trace 0L) then
    match t.metrics with
    | None -> ()
    | Some m ->
        Metrics.Counter.incr
          (Metrics.Counter.counter m
             (Metrics.series "refnet_serve_anomaly_total"
                [ ("kind", kind); ("trace_id", Flight.hex_of_trace trace) ]))

let load_evidence t entries =
  List.iter
    (fun (trace, summary) ->
      if not (Int64.equal trace 0L) then Hashtbl.replace t.evidence trace summary)
    entries

let evidence_count t = Hashtbl.length t.evidence

(* ---------- output ---------- *)

let send t conn frame =
  if not conn.close_after_flush then begin
    let bytes = Frame.encode_server frame in
    if Buffer.length conn.out + String.length bytes > t.cfg.max_output_bytes
    then begin
      (* slow consumer: the peer is not reading.  Drop the buffered
         output (it will never be read) and close with a terse error
         that fits whatever room the transport still has. *)
      Buffer.clear conn.out;
      Buffer.add_string conn.out
        (Frame.encode_server
           (Frame.Error { code = Frame.Slow_consumer; detail = "egress full" }));
      conn.quarantined <- true;
      conn.close_after_flush <- true;
      t.n_quarantines <- t.n_quarantines + 1;
      bump t (fun i -> i.i_quarantines)
    end
    else Buffer.add_string conn.out bytes
  end

(* ---------- session teardown ---------- *)

let remove_session t s =
  if Hashtbl.mem t.sessions s.sid then begin
    Hashtbl.remove t.sessions s.sid;
    t.live_sessions <- t.live_sessions - 1;
    t.queued_msgs <- t.queued_msgs - s.pending_count;
    s.pending <- [];
    s.pending_count <- 0;
    (match Hashtbl.find_opt t.conns s.s_conn with
    | None -> ()
    | Some c -> c.c_sessions <- List.filter (fun sid -> sid <> s.sid) c.c_sessions)
  end

let abort_session t s =
  remove_session t s;
  t.n_aborted <- t.n_aborted + 1;
  bump t (fun i -> i.i_aborts)

let abort_conn_sessions t conn =
  List.iter
    (fun sid ->
      match Hashtbl.find_opt t.sessions sid with
      | Some s ->
          Hashtbl.remove t.sessions sid;
          t.live_sessions <- t.live_sessions - 1;
          t.queued_msgs <- t.queued_msgs - s.pending_count;
          t.n_aborted <- t.n_aborted + 1;
          bump t (fun i -> i.i_aborts)
      | None -> ())
    conn.c_sessions;
  conn.c_sessions <- []

let quarantine t conn code detail =
  if not conn.quarantined then begin
    t.n_quarantines <- t.n_quarantines + 1;
    bump t (fun i -> i.i_quarantines);
    anomaly t ~kind:"quarantine" ~trace:conn.c_trace;
    fl_note t ~trace:conn.c_trace ~code:"quarantine"
      ~detail:(Frame.error_code_to_string code ^ ": " ^ detail);
    abort_conn_sessions t conn;
    send t conn (Frame.Error { code; detail });
    conn.quarantined <- true;
    conn.close_after_flush <- true
  end

(* ---------- connection lifecycle ---------- *)

let open_conn t =
  if Hashtbl.length t.conns >= t.cfg.max_conns then
    Error
      (Printf.sprintf "connection limit %d reached" t.cfg.max_conns)
  else begin
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    t.n_conns_opened <- t.n_conns_opened + 1;
    Hashtbl.replace t.conns cid
      {
        cid;
        decoder = Wire.decoder ~max_frame:t.cfg.max_frame_bytes ();
        out = Buffer.create 256;
        c_trace = 0L;
        c_sessions = [];
        quarantined = false;
        close_after_flush = false;
      };
    Ok cid
  end

let close_conn t cid =
  match Hashtbl.find_opt t.conns cid with
  | None -> ()
  | Some conn ->
      abort_conn_sessions t conn;
      Hashtbl.remove t.conns cid

let take_output t cid =
  match Hashtbl.find_opt t.conns cid with
  | None -> ""
  | Some conn ->
      if Buffer.length conn.out = 0 then ""
      else begin
        let s = Buffer.contents conn.out in
        Buffer.clear conn.out;
        s
      end

let wants_close t cid =
  match Hashtbl.find_opt t.conns cid with
  | None -> true
  | Some conn -> conn.close_after_flush && Buffer.length conn.out = 0

(* ---------- frame handling ---------- *)

let mark_dirty t s =
  if not s.dirty then begin
    s.dirty <- true;
    t.dirty_sids <- s.sid :: t.dirty_sids
  end

(* Every refusal funnels through here: the per-reason counter, the
   labelled [refnet_serve_rejects_total] series and the flight note all
   stay in lockstep with the wire reply. *)
let reject t conn ~open_id ?(trace = 0L) ?(detail = "") reason =
  let trace = if Int64.equal trace 0L then conn.c_trace else trace in
  (match reason with
  | Frame.Overloaded ->
      t.n_sheds <- t.n_sheds + 1;
      bump t (fun i -> i.i_sheds)
  | Frame.Draining ->
      t.n_drain_rej <- t.n_drain_rej + 1;
      bump t (fun i -> i.i_drains)
  | Frame.Unknown_protocol -> t.n_rej_unknown <- t.n_rej_unknown + 1
  | Frame.Bad_n -> t.n_rej_bad_n <- t.n_rej_bad_n + 1
  | Frame.Session_limit -> t.n_rej_session_limit <- t.n_rej_session_limit + 1
  | Frame.Evidence ->
      t.n_rej_evidence <- t.n_rej_evidence + 1;
      anomaly t ~kind:"evidence_reject" ~trace);
  (match t.inst with
  | None -> ()
  | Some i -> Metrics.Counter.incr (i.i_reject reason));
  let code = match reason with Frame.Evidence -> "evidence" | _ -> "reject" in
  let note_detail =
    if detail = "" then Frame.reject_reason_to_string reason else detail
  in
  fl_note t ~trace ~code ~detail:note_detail;
  send t conn
    (Frame.Rejected
       { open_id; reason; retry_after_ms = t.cfg.retry_after_ms; trace; detail })

let handle_open t conn ~open_id ~protocol ~n ~trace:req_trace =
  match
    if Int64.equal req_trace 0L then None
    else Hashtbl.find_opt t.evidence req_trace
  with
  | Some summary ->
      (* the id was found mid-flight in a crash dump: refuse to resume
         and hand the evidence back instead of silently forgetting *)
      reject t conn ~open_id ~trace:req_trace ~detail:summary Frame.Evidence
  | None ->
  if t.is_draining then reject t conn ~open_id Frame.Draining
  else if t.live_sessions >= t.cfg.max_sessions then
    reject t conn ~open_id Frame.Overloaded
  else if List.length conn.c_sessions >= t.cfg.max_sessions_per_conn then
    reject t conn ~open_id Frame.Session_limit
  else
    match Registry.lookup ~spec:protocol ~n with
    | Error _ ->
        (* distinguish a malformed spec from a bad size for the reply *)
        let reason =
          match Registry.max_n protocol with
          | Some _ -> Frame.Bad_n
          | None -> Frame.Unknown_protocol
        in
        reject t conn ~open_id reason
    | Ok (Registry.Entry { protocol = p; render }) ->
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        let now = t.clock () in
        let s_trace =
          if Int64.equal req_trace 0L then conn.c_trace else req_trace
        in
        let s =
          {
            sid;
            s_conn = conn.cid;
            s_trace;
            s_label = p.Protocol.name;
            s_n = n;
            state = Sess { feed = Protocol.start p.Protocol.referee ~n; render };
            pending = [];
            pending_count = 0;
            window = t.cfg.session_credit;
            finish_cause = None;
            dirty = false;
            absorb_log = [];
            max_bits = 0;
            total_bits = 0;
            opened_at = now;
            last_activity = now;
          }
        in
        Hashtbl.replace t.sessions sid s;
        conn.c_sessions <- sid :: conn.c_sessions;
        t.live_sessions <- t.live_sessions + 1;
        t.n_sessions <- t.n_sessions + 1;
        bump t (fun i -> i.i_sessions);
        fl_note t ~trace:s_trace ~code:"open"
          ~detail:(Printf.sprintf "%s n=%d sid=%d" s.s_label n sid);
        fl_event t ~trace:s_trace (Trace.Span_begin { label = s.s_label; n });
        send t conn
          (Frame.Opened { open_id; session = sid; credit = t.cfg.session_credit })

let find_session t conn sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s when s.s_conn = conn.cid -> `Mine s
  | Some _ -> `Foreign
  | None -> `Gone

let late t =
  t.n_late <- t.n_late + 1;
  bump t (fun i -> i.i_late)

let handle_frame t conn frame =
  match frame with
  | Frame.Hello { version } ->
      if version <> Frame.version then
        quarantine t conn Frame.Protocol_violation
          (Printf.sprintf "unsupported protocol version %d" version)
      else begin
        let trace = mint_trace t in
        conn.c_trace <- trace;
        send t conn (Frame.Welcome { version = Frame.version; trace })
      end
  | Frame.Ping { token } -> send t conn (Frame.Pong { token })
  | Frame.Bye ->
      (* a graceful goodbye still abandons its open sessions *)
      abort_conn_sessions t conn;
      conn.close_after_flush <- true
  | Frame.Open { open_id; protocol; n; trace } ->
      handle_open t conn ~open_id ~protocol ~n ~trace
  | Frame.Msg { session; node; payload } -> (
      match find_session t conn session with
      | `Gone -> late t (* races with a server-side timeout verdict *)
      | `Foreign ->
          quarantine t conn Frame.Protocol_violation
            (Printf.sprintf "session %d belongs to another connection" session)
      | `Mine s ->
          if s.finish_cause <> None then late t
          else if s.window = 0 then begin
            fl_note t ~trace:s.s_trace ~code:"credit"
              ~detail:(Printf.sprintf "session %d exceeded its credit window" session);
            quarantine t conn Frame.Credit_exceeded
              (Printf.sprintf "session %d exceeded its credit window" session)
          end
          else begin
            s.window <- s.window - 1;
            s.pending <- (node, payload) :: s.pending;
            s.pending_count <- s.pending_count + 1;
            t.queued_msgs <- t.queued_msgs + 1;
            if not (Trace.is_null t.trace) then
              s.absorb_log <- (node, Message.bits payload) :: s.absorb_log;
            fl_event t ~trace:s.s_trace
              (Trace.Referee_absorb { id = node; bits = Message.bits payload });
            let b = Message.bits payload in
            if b > s.max_bits then s.max_bits <- b;
            s.total_bits <- s.total_bits + b;
            s.last_activity <- t.clock ();
            mark_dirty t s
          end)
  | Frame.Finish { session } -> (
      match find_session t conn session with
      | `Gone -> late t
      | `Foreign ->
          quarantine t conn Frame.Protocol_violation
            (Printf.sprintf "session %d belongs to another connection" session)
      | `Mine s ->
          if s.finish_cause = None then begin
            s.finish_cause <- Some Client_finish;
            s.last_activity <- t.clock ();
            mark_dirty t s
          end
          else late t)
  | Frame.Abort { session } -> (
      match find_session t conn session with
      | `Gone -> late t
      | `Foreign ->
          quarantine t conn Frame.Protocol_violation
            (Printf.sprintf "session %d belongs to another connection" session)
      | `Mine s ->
          send t conn
            (Frame.Verdict
               {
                 session = s.sid;
                 status = Frame.Inconclusive;
                 timeout = Frame.No_timeout;
                 payload = "aborted by client";
                 missing = 0;
                 malformed = 0;
                 duplicated = 0;
                 undetermined = 0;
                 trace = s.s_trace;
               });
          fl_note t ~trace:s.s_trace ~code:"verdict" ~detail:"aborted by client";
          abort_session t s)

let feed_bytes t cid b ~off ~len =
  match Hashtbl.find_opt t.conns cid with
  | None -> ()
  | Some conn ->
      if not conn.quarantined then begin
        t.n_bytes <- t.n_bytes + len;
        (match t.inst with
        | None -> ()
        | Some i -> Metrics.Counter.add i.i_bytes len);
        Wire.push conn.decoder b ~off ~len;
        let continue = ref true in
        while !continue do
          match Wire.next conn.decoder with
          | Wire.Awaiting -> continue := false
          | Wire.Corrupt detail ->
              quarantine t conn Frame.Corrupt_frame detail;
              continue := false
          | Wire.Frame { kind; payload } -> (
              t.n_frames <- t.n_frames + 1;
              bump t (fun i -> i.i_frames);
              match Frame.decode_client ~kind payload with
              | Error detail ->
                  quarantine t conn Frame.Corrupt_frame detail;
                  continue := false
              | Ok frame -> (
                  (* outermost shell: a bug in frame handling must not
                     kill the daemon — count it and quarantine instead *)
                  try handle_frame t conn frame
                  with e ->
                    t.n_escapes <- t.n_escapes + 1;
                    bump t (fun i -> i.i_escapes);
                    quarantine t conn Frame.Internal (Printexc.to_string e)))
        done;
        if conn.quarantined || conn.close_after_flush then ()
      end

(* ---------- tick: timeouts + session work on the pool ---------- *)

type work_item = {
  w_sid : int;
  w_state : sess_state;
  w_msgs : (int * Message.t) array; (* arrival order *)
  w_finish : finish_cause option;
}

type work_out =
  | Advanced of sess_state
  | Finished of {
      f_status : Frame.status;
      f_payload : string;
      f_missing : int;
      f_malformed : int;
      f_duplicated : int;
      f_undetermined : int;
    }
  | Crashed of string

let run_item it =
  match it.w_state with
  | Sess { feed; render } -> (
      try
        let feed =
          Array.fold_left
            (fun f (id, m) -> Protocol.feed f ~id m)
            feed it.w_msgs
        in
        match it.w_finish with
        | None -> Advanced (Sess { feed; render })
        | Some _ -> (
            match Protocol.finish feed with
            | Verdict.Decided a ->
                Finished
                  {
                    f_status = Frame.Decided;
                    f_payload = render a;
                    f_missing = 0;
                    f_malformed = 0;
                    f_duplicated = 0;
                    f_undetermined = 0;
                  }
            | Verdict.Degraded (a, r) ->
                Finished
                  {
                    f_status = Frame.Degraded;
                    f_payload = render a;
                    f_missing = List.length r.Verdict.missing;
                    f_malformed = List.length r.Verdict.malformed;
                    f_duplicated = List.length r.Verdict.duplicated;
                    f_undetermined = List.length r.Verdict.undetermined;
                  }
            | Verdict.Inconclusive reason ->
                Finished
                  {
                    f_status = Frame.Inconclusive;
                    f_payload = reason;
                    f_missing = 0;
                    f_malformed = 0;
                    f_duplicated = 0;
                    f_undetermined = 0;
                  })
      with e -> Crashed (Printexc.to_string e))

let emit_session_trace t s =
  if not (Trace.is_null t.trace) then begin
    (* the whole span is emitted contiguously from the engine thread at
       verdict time, so concurrent sessions never interleave events and
       Trace.balanced_spans holds for any serve trace.  The span label
       carries the session trace id outermost ([Bound_audit] peels it
       budget-transparently) and session-aware sinks also get it as a
       leading "session_id" JSON field. *)
    let label =
      if Int64.equal s.s_trace 0L then s.s_label
      else Printf.sprintf "%s[trace=%s]" s.s_label (Flight.hex_of_trace s.s_trace)
    in
    let emit ev =
      if Int64.equal s.s_trace 0L then Trace.emit t.trace ev
      else Trace.emit_session t.trace ~session:s.s_trace ev
    in
    emit (Trace.Span_begin { label; n = s.s_n });
    List.iter
      (fun (id, bits) -> emit (Trace.Referee_absorb { id; bits }))
      (List.rev s.absorb_log);
    emit
      (Trace.Referee_done
         {
           label;
           n = s.s_n;
           max_bits = s.max_bits;
           total_bits = s.total_bits;
         });
    emit (Trace.Span_end { label; n = s.s_n })
  end

let finish_session t s (cause : finish_cause) out =
  (match Hashtbl.find_opt t.conns s.s_conn with
  | None -> ()
  | Some conn ->
      let timeout =
        match cause with
        | Client_finish -> Frame.No_timeout
        | Idle_expire -> Frame.Idle_timeout
        | Deadline_expire -> Frame.Deadline_timeout
      in
      (match out with
      | Finished f ->
          send t conn
            (Frame.Verdict
               {
                 session = s.sid;
                 status = f.f_status;
                 timeout;
                 payload = f.f_payload;
                 missing = f.f_missing;
                 malformed = f.f_malformed;
                 duplicated = f.f_duplicated;
                 undetermined = f.f_undetermined;
                 trace = s.s_trace;
               })
      | Advanced _ | Crashed _ -> ()));
  (match out with
  | Finished f ->
      fl_event t ~trace:s.s_trace
        (Trace.Referee_done
           {
             label = s.s_label;
             n = s.s_n;
             max_bits = s.max_bits;
             total_bits = s.total_bits;
           });
      let status =
        match f.f_status with
        | Frame.Decided -> "decided"
        | Frame.Degraded -> "degraded"
        | Frame.Inconclusive -> "inconclusive"
      in
      fl_note t ~trace:s.s_trace ~code:"verdict" ~detail:status
  | Advanced _ | Crashed _ -> ());
  (match out with
  | Finished { f_status = Frame.Decided; _ } ->
      t.n_decided <- t.n_decided + 1;
      bump t (fun i -> i.i_decided)
  | Finished { f_status = Frame.Degraded; _ } ->
      t.n_degraded <- t.n_degraded + 1;
      bump t (fun i -> i.i_degraded)
  | Finished { f_status = Frame.Inconclusive; _ } ->
      t.n_inconclusive <- t.n_inconclusive + 1;
      bump t (fun i -> i.i_inconclusive)
  | Advanced _ | Crashed _ -> ());
  (match cause with
  | Client_finish -> ()
  | Idle_expire ->
      t.n_timeout_idle <- t.n_timeout_idle + 1;
      bump t (fun i -> i.i_timeout_idle)
  | Deadline_expire ->
      t.n_timeout_deadline <- t.n_timeout_deadline + 1;
      bump t (fun i -> i.i_timeout_deadline));
  emit_session_trace t s;
  remove_session t s

let tick_body t =
  let now = t.clock () in
  (* 1. timeouts: force a finish cause onto expired sessions *)
  Hashtbl.iter
    (fun _ s ->
      if s.finish_cause = None then
        if now -. s.opened_at >= t.cfg.deadline_s then begin
          s.finish_cause <- Some Deadline_expire;
          mark_dirty t s
        end
        else if now -. s.last_activity >= t.cfg.idle_timeout_s then begin
          s.finish_cause <- Some Idle_expire;
          mark_dirty t s
        end)
    t.sessions;
  (* 2. collect dirty sessions in a deterministic order *)
  if t.dirty_sids <> [] then begin
    let sids = List.sort_uniq compare t.dirty_sids in
    t.dirty_sids <- [];
    let items =
      List.filter_map
        (fun sid ->
          match Hashtbl.find_opt t.sessions sid with
          | None -> None
          | Some s ->
              s.dirty <- false;
              let msgs = Array.of_list (List.rev s.pending) in
              t.queued_msgs <- t.queued_msgs - s.pending_count;
              s.pending <- [];
              s.pending_count <- 0;
              Some
                ( s,
                  {
                    w_sid = sid;
                    w_state = s.state;
                    w_msgs = msgs;
                    w_finish = s.finish_cause;
                  } ))
        sids
    in
    let arr = Array.of_list (List.map snd items) in
    (* 3. fold each session's batch as one task: one domain absorbs a
       session's messages in arrival order, so the transcript is
       bit-identical to a sequential run at any pool width *)
    let outs =
      if Array.length arr < t.cfg.par_threshold then Array.map run_item arr
      else
        Parallel.map_array ?domains:t.cfg.domains ?metrics:t.metrics run_item
          arr
    in
    (* 4. apply results in session order on the engine thread *)
    List.iteri
      (fun idx (s, item) ->
        match outs.(idx) with
        | Advanced st ->
            s.state <- st;
            let absorbed = Array.length item.w_msgs in
            if absorbed > 0 then begin
              s.window <- s.window + absorbed;
              match Hashtbl.find_opt t.conns s.s_conn with
              | None -> ()
              | Some conn ->
                  send t conn
                    (Frame.Credit { session = s.sid; credit = absorbed })
            end
        | Finished _ as out -> (
            match s.finish_cause with
            | Some cause -> finish_session t s cause out
            | None -> finish_session t s Client_finish out)
        | Crashed detail -> (
            (* a referee exception escaped the hardened combinators:
               tear the whole connection down as poisoned *)
            remove_session t s;
            t.n_aborted <- t.n_aborted + 1;
            bump t (fun i -> i.i_aborts);
            match Hashtbl.find_opt t.conns s.s_conn with
            | None -> ()
            | Some conn -> quarantine t conn Frame.Internal detail))
      items
  end;
  (* 5. refresh gauges *)
  match t.inst with
  | None -> ()
  | Some i ->
      Metrics.Gauge.set i.i_live (float_of_int t.live_sessions);
      Metrics.Gauge.set i.i_queue (float_of_int t.queued_msgs)

let tick t =
  try tick_body t
  with e ->
    (* must never happen: tick is the daemon's heartbeat.  Swallow,
       count, and let the selftest/CI gate on the counter. *)
    ignore (Printexc.to_string e);
    t.n_escapes <- t.n_escapes + 1;
    bump t (fun i -> i.i_escapes)

let begin_drain t = t.is_draining <- true
let draining t = t.is_draining
let idle t = t.live_sessions = 0 && t.queued_msgs = 0

let stats t =
  {
    conns_opened = t.n_conns_opened;
    sessions_opened = t.n_sessions;
    decided = t.n_decided;
    degraded = t.n_degraded;
    inconclusive = t.n_inconclusive;
    aborted = t.n_aborted;
    sheds = t.n_sheds;
    drain_rejections = t.n_drain_rej;
    rej_unknown_protocol = t.n_rej_unknown;
    rej_bad_n = t.n_rej_bad_n;
    rej_session_limit = t.n_rej_session_limit;
    rej_evidence = t.n_rej_evidence;
    quarantines = t.n_quarantines;
    quarantine_escapes = t.n_escapes;
    late_frames = t.n_late;
    timeouts_idle = t.n_timeout_idle;
    timeouts_deadline = t.n_timeout_deadline;
    frames = t.n_frames;
    bytes_in = t.n_bytes;
    live_sessions = t.live_sessions;
    queued_msgs = t.queued_msgs;
  }
