(** The serve daemon's transport-independent core.

    The engine owns connections, sessions, admission control,
    backpressure accounting, timeouts and quarantine; a transport
    ({!Daemon} for real sockets, {!Selftest} in-process) only moves
    bytes between it and the outside world:

    {v
      feed_bytes --> [decode] --> sessions --> tick --> take_output
    v}

    Crash-only discipline: nothing a client sends can raise out of
    [feed_bytes] or [tick].  Corrupt frames and protocol violations
    quarantine the offending connection (typed [Error] frame, sessions
    torn down, counter bumped); a referee exception that escapes the
    hardened combinators quarantines too.  If an exception ever reaches
    the engine's own outermost handlers it is swallowed and counted in
    [quarantine_escapes] — the selftest and CI gate on that counter
    being zero.

    Sharding: each {!tick} collects the sessions with queued input and
    folds every session's batch as one task on the {!Core.Parallel}
    pool.  A session's messages are absorbed by exactly one domain in
    arrival order, so transcripts are bit-identical to a sequential
    run; which sessions share a domain never matters. *)

type config = {
  max_sessions : int;  (** global admission cap on live sessions *)
  max_sessions_per_conn : int;
  max_conns : int;
  session_credit : int;
      (** ingress window: a client may have at most this many [Msg]
          frames unacknowledged by [Credit] grants *)
  max_frame_bytes : int;
  max_output_bytes : int;
      (** egress cap per connection; a client that stops reading is
          quarantined as a slow consumer instead of growing the buffer *)
  deadline_s : float;  (** wall-clock budget for a whole session *)
  idle_timeout_s : float;  (** max quiet gap before a forced verdict *)
  retry_after_ms : int;  (** suggestion carried in [Overloaded] sheds *)
  domains : int option;  (** [Parallel] pool width override *)
  par_threshold : int;
      (** batches smaller than this fold inline instead of on the pool *)
}

val default_config : config

type t

(** [create ?clock ?trace ?metrics ?flight config].  [clock] (default
    [Unix.gettimeofday]) drives deadlines and idle timeouts; tests and
    the selftest inject a virtual clock so timeout paths run
    deterministically.  It also seeds the session trace-id sequence:
    each [Hello] mints a fresh 64-bit id (returned in [Welcome]) that
    tags every span, absorb, credit stall and quarantine the
    connection's sessions produce — in jsonl traces (as a leading
    ["session_id"] field and a ["[trace=<16hex>]"] label decoration,
    both budget-transparent to {!Core.Bound_audit}), in [Verdict] /
    [Rejected] reply frames, and in the optional {!Core.Flight}
    recorder.  [flight] receives a real-time record of opens, absorbs
    and dispositions, so a session interrupted by a crash leaves
    evidence even though trace sinks only emit at verdict time. *)
val create :
  ?clock:(unit -> float) ->
  ?trace:Core.Trace.sink ->
  ?metrics:Core.Metrics.t ->
  ?flight:Core.Flight.t ->
  config ->
  t

(** [load_evidence t entries] registers sessions found mid-flight in
    boot-scanned crash dumps (see {!Core.Flight.open_traces}).  An
    [Open] echoing one of these trace ids is answered with
    [Rejected {reason = Evidence}] carrying the summary in [detail] —
    the daemon refuses to resume what it cannot remember, with proof.
    Trace id 0 entries are ignored. *)
val load_evidence : t -> (int64 * string) list -> unit

val evidence_count : t -> int

type conn_id = int

(** [open_conn t] admits a connection, or explains why not
    (connection cap). *)
val open_conn : t -> (conn_id, string) result

(** [feed_bytes t c b ~off ~len] pushes received bytes.  Complete frames
    are handled immediately (handshake, opens, queueing); session work
    is deferred to {!tick}.  Never raises on hostile input.  Unknown or
    already-closed [c] is a no-op. *)
val feed_bytes : t -> conn_id -> bytes -> off:int -> len:int -> unit

(** [close_conn t c] — the peer vanished: live sessions on [c] are torn
    down as aborted (no verdict — there is nobody to send it to). *)
val close_conn : t -> conn_id -> unit

(** [tick t] advances time (timeouts), folds queued session work on the
    domain pool, grants credit, finishes sessions into verdict frames,
    and refreshes gauges.  Call it in the transport's event loop. *)
val tick : t -> unit

(** [take_output t c] drains bytes queued for the peer (empty string if
    none, or if [c] is unknown). *)
val take_output : t -> conn_id -> string

(** [wants_close t c] — the engine is done with [c] (quarantined or
    [Bye]); the transport should flush remaining output, then call
    {!close_conn} and close the socket. *)
val wants_close : t -> conn_id -> bool

(** [begin_drain t] stops admission ([Rejected Draining]); in-flight
    sessions finish normally or by timeout. *)
val begin_drain : t -> unit

val draining : t -> bool

(** [idle t] — no live sessions and no queued work (drain is complete
    once this holds and the transport has flushed). *)
val idle : t -> bool

(** Monotonic counters and live gauges, mirrored into the optional
    {!Core.Metrics} registry under [refnet_serve_*]. *)
type stats = {
  conns_opened : int;
  sessions_opened : int;
  decided : int;
  degraded : int;
  inconclusive : int;
  aborted : int;  (** sessions ended without a verdict (peer vanished)
                      or by explicit client [Abort] *)
  sheds : int;  (** admission rejections with [Overloaded] *)
  drain_rejections : int;
  rej_unknown_protocol : int;
  rej_bad_n : int;
  rej_session_limit : int;
  rej_evidence : int;
      (** resume attempts refused with crash-dump evidence.  Together
          with [sheds] ([Overloaded]) and [drain_rejections]
          ([Draining]) these mirror the labelled
          [refnet_serve_rejects_total{reason=...}] series. *)
  quarantines : int;
  quarantine_escapes : int;  (** exceptions caught by the outermost
                                 shell — must be zero *)
  late_frames : int;  (** frames for already-finished sessions *)
  timeouts_idle : int;
  timeouts_deadline : int;
  frames : int;
  bytes_in : int;
  live_sessions : int;
  queued_msgs : int;
}

val stats : t -> stats
