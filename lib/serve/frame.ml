(* Typed frames over Wire.  Field order in each payload matches the
   constructor declaration order; see frame.mli for the kind split. *)

(* v2: Open/Welcome/Verdict/Rejected carry a 64-bit session trace id,
   Rejected carries an evidence detail string, and the Evidence reject
   reason exists (refuse-with-evidence after a crash). *)
let version = 2

type client =
  | Hello of { version : int }
  | Open of { open_id : int; protocol : string; n : int; trace : int64 }
  | Msg of { session : int; node : int; payload : Core.Message.t }
  | Finish of { session : int }
  | Abort of { session : int }
  | Ping of { token : int }
  | Bye

type reject_reason =
  | Overloaded
  | Draining
  | Unknown_protocol
  | Bad_n
  | Session_limit
  | Evidence

type error_code =
  | Protocol_violation
  | Corrupt_frame
  | Credit_exceeded
  | Slow_consumer
  | Internal

type status = Decided | Degraded | Inconclusive
type timeout_kind = No_timeout | Idle_timeout | Deadline_timeout

type server =
  | Welcome of { version : int; trace : int64 }
  | Opened of { open_id : int; session : int; credit : int }
  | Credit of { session : int; credit : int }
  | Verdict of {
      session : int;
      status : status;
      timeout : timeout_kind;
      payload : string;
      missing : int;
      malformed : int;
      duplicated : int;
      undetermined : int;
      trace : int64;
    }
  | Rejected of {
      open_id : int;
      reason : reject_reason;
      retry_after_ms : int;
      trace : int64;
      detail : string;
    }
  | Error of { code : error_code; detail : string }
  | Pong of { token : int }

(* ---------- kind bytes ---------- *)

let k_hello = 0x01
let k_open = 0x02
let k_msg = 0x03
let k_finish = 0x04
let k_abort = 0x05
let k_ping = 0x06
let k_bye = 0x07
let k_welcome = 0x81
let k_opened = 0x82
let k_credit = 0x83
let k_verdict = 0x84
let k_rejected = 0x85
let k_error = 0x86
let k_pong = 0x87

(* ---------- enums ---------- *)

let reject_code = function
  | Overloaded -> 1
  | Draining -> 2
  | Unknown_protocol -> 3
  | Bad_n -> 4
  | Session_limit -> 5
  | Evidence -> 6

let reject_of_code = function
  | 1 -> Ok Overloaded
  | 2 -> Ok Draining
  | 3 -> Ok Unknown_protocol
  | 4 -> Ok Bad_n
  | 5 -> Ok Session_limit
  | 6 -> Ok Evidence
  | c -> Error (Printf.sprintf "unknown reject reason %d" c)

let reject_reason_to_string = function
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Unknown_protocol -> "unknown-protocol"
  | Bad_n -> "bad-n"
  | Session_limit -> "session-limit"
  | Evidence -> "evidence"

let error_code_int = function
  | Protocol_violation -> 1
  | Corrupt_frame -> 2
  | Credit_exceeded -> 3
  | Slow_consumer -> 4
  | Internal -> 5

let error_of_code = function
  | 1 -> Ok Protocol_violation
  | 2 -> Ok Corrupt_frame
  | 3 -> Ok Credit_exceeded
  | 4 -> Ok Slow_consumer
  | 5 -> Ok Internal
  | c -> Error (Printf.sprintf "unknown error code %d" c)

let error_code_to_string = function
  | Protocol_violation -> "protocol-violation"
  | Corrupt_frame -> "corrupt-frame"
  | Credit_exceeded -> "credit-exceeded"
  | Slow_consumer -> "slow-consumer"
  | Internal -> "internal"

let status_code = function Decided -> 0 | Degraded -> 1 | Inconclusive -> 2

let status_of_code = function
  | 0 -> Ok Decided
  | 1 -> Ok Degraded
  | 2 -> Ok Inconclusive
  | c -> Error (Printf.sprintf "unknown verdict status %d" c)

let timeout_code = function
  | No_timeout -> 0
  | Idle_timeout -> 1
  | Deadline_timeout -> 2

let timeout_of_code = function
  | 0 -> Ok No_timeout
  | 1 -> Ok Idle_timeout
  | 2 -> Ok Deadline_timeout
  | c -> Error (Printf.sprintf "unknown timeout kind %d" c)

(* ---------- encoding ---------- *)

let framed kind fill =
  let p = Wire.Put.create () in
  fill p;
  Wire.encode ~kind (Wire.Put.contents p)

let encode_client = function
  | Hello { version } -> framed k_hello (fun p -> Wire.Put.u16 p version)
  | Open { open_id; protocol; n; trace } ->
      framed k_open (fun p ->
          Wire.Put.u32 p open_id;
          Wire.Put.str p protocol;
          Wire.Put.u32 p n;
          Wire.Put.u64 p trace)
  | Msg { session; node; payload } ->
      framed k_msg (fun p ->
          Wire.Put.u32 p session;
          Wire.Put.u32 p node;
          Wire.Put.bits p payload)
  | Finish { session } -> framed k_finish (fun p -> Wire.Put.u32 p session)
  | Abort { session } -> framed k_abort (fun p -> Wire.Put.u32 p session)
  | Ping { token } -> framed k_ping (fun p -> Wire.Put.u32 p token)
  | Bye -> framed k_bye (fun _ -> ())

let encode_server = function
  | Welcome { version; trace } ->
      framed k_welcome (fun p ->
          Wire.Put.u16 p version;
          Wire.Put.u64 p trace)
  | Opened { open_id; session; credit } ->
      framed k_opened (fun p ->
          Wire.Put.u32 p open_id;
          Wire.Put.u32 p session;
          Wire.Put.u32 p credit)
  | Credit { session; credit } ->
      framed k_credit (fun p ->
          Wire.Put.u32 p session;
          Wire.Put.u32 p credit)
  | Verdict
      { session; status; timeout; payload; missing; malformed; duplicated;
        undetermined; trace } ->
      framed k_verdict (fun p ->
          Wire.Put.u32 p session;
          Wire.Put.u8 p (status_code status);
          Wire.Put.u8 p (timeout_code timeout);
          Wire.Put.str p payload;
          Wire.Put.u32 p missing;
          Wire.Put.u32 p malformed;
          Wire.Put.u32 p duplicated;
          Wire.Put.u32 p undetermined;
          Wire.Put.u64 p trace)
  | Rejected { open_id; reason; retry_after_ms; trace; detail } ->
      framed k_rejected (fun p ->
          Wire.Put.u32 p open_id;
          Wire.Put.u8 p (reject_code reason);
          Wire.Put.u32 p retry_after_ms;
          Wire.Put.u64 p trace;
          Wire.Put.str p detail)
  | Error { code; detail } ->
      framed k_error (fun p ->
          Wire.Put.u8 p (error_code_int code);
          Wire.Put.str p detail)
  | Pong { token } -> framed k_pong (fun p -> Wire.Put.u32 p token)

(* ---------- decoding ---------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let closed g r =
  let* v = r in
  if Wire.Get.finished g then Ok v else Error "trailing bytes in frame payload"

let decode_client ~kind payload =
  let g = Wire.Get.create payload in
  closed g
    (if kind = k_hello then
       let* version = Wire.Get.u16 g in
       Ok (Hello { version })
     else if kind = k_open then
       let* open_id = Wire.Get.u32 g in
       let* protocol = Wire.Get.str g in
       let* n = Wire.Get.u32 g in
       let* trace = Wire.Get.u64 g in
       Ok (Open { open_id; protocol; n; trace })
     else if kind = k_msg then
       let* session = Wire.Get.u32 g in
       let* node = Wire.Get.u32 g in
       let* payload = Wire.Get.bits g in
       Ok (Msg { session; node; payload })
     else if kind = k_finish then
       let* session = Wire.Get.u32 g in
       Ok (Finish { session })
     else if kind = k_abort then
       let* session = Wire.Get.u32 g in
       Ok (Abort { session })
     else if kind = k_ping then
       let* token = Wire.Get.u32 g in
       Ok (Ping { token })
     else if kind = k_bye then Ok Bye
     else Error (Printf.sprintf "unknown client frame kind 0x%02X" kind))

let decode_server ~kind payload =
  let g = Wire.Get.create payload in
  closed g
    (if kind = k_welcome then
       let* version = Wire.Get.u16 g in
       let* trace = Wire.Get.u64 g in
       Ok (Welcome { version; trace })
     else if kind = k_opened then
       let* open_id = Wire.Get.u32 g in
       let* session = Wire.Get.u32 g in
       let* credit = Wire.Get.u32 g in
       Ok (Opened { open_id; session; credit })
     else if kind = k_credit then
       let* session = Wire.Get.u32 g in
       let* credit = Wire.Get.u32 g in
       Ok (Credit { session; credit })
     else if kind = k_verdict then
       let* session = Wire.Get.u32 g in
       let* s = Wire.Get.u8 g in
       let* status = status_of_code s in
       let* t = Wire.Get.u8 g in
       let* timeout = timeout_of_code t in
       let* payload = Wire.Get.str g in
       let* missing = Wire.Get.u32 g in
       let* malformed = Wire.Get.u32 g in
       let* duplicated = Wire.Get.u32 g in
       let* undetermined = Wire.Get.u32 g in
       let* trace = Wire.Get.u64 g in
       Ok
         (Verdict
            { session; status; timeout; payload; missing; malformed;
              duplicated; undetermined; trace })
     else if kind = k_rejected then
       let* open_id = Wire.Get.u32 g in
       let* r = Wire.Get.u8 g in
       let* reason = reject_of_code r in
       let* retry_after_ms = Wire.Get.u32 g in
       let* trace = Wire.Get.u64 g in
       let* detail = Wire.Get.str g in
       Ok (Rejected { open_id; reason; retry_after_ms; trace; detail })
     else if kind = k_error then
       let* c = Wire.Get.u8 g in
       let* code = error_of_code c in
       let* detail = Wire.Get.str g in
       Ok (Error { code; detail })
     else if kind = k_pong then
       let* token = Wire.Get.u32 g in
       Ok (Pong { token })
     else Error (Printf.sprintf "unknown server frame kind 0x%02X" kind))

(* ---------- printers ---------- *)

let pp_client ppf = function
  | Hello { version } -> Format.fprintf ppf "hello v%d" version
  | Open { open_id; protocol; n; trace } ->
      Format.fprintf ppf "open #%d %s n=%d trace=%016Lx" open_id protocol n trace
  | Msg { session; node; payload } ->
      Format.fprintf ppf "msg s%d node=%d bits=%d" session node
        (Core.Message.bits payload)
  | Finish { session } -> Format.fprintf ppf "finish s%d" session
  | Abort { session } -> Format.fprintf ppf "abort s%d" session
  | Ping { token } -> Format.fprintf ppf "ping %d" token
  | Bye -> Format.fprintf ppf "bye"

let pp_server ppf = function
  | Welcome { version; trace } ->
      Format.fprintf ppf "welcome v%d trace=%016Lx" version trace
  | Opened { open_id; session; credit } ->
      Format.fprintf ppf "opened #%d s%d credit=%d" open_id session credit
  | Credit { session; credit } ->
      Format.fprintf ppf "credit s%d +%d" session credit
  | Verdict { session; status; payload; _ } ->
      Format.fprintf ppf "verdict s%d %s %s" session
        (match status with
        | Decided -> "decided"
        | Degraded -> "degraded"
        | Inconclusive -> "inconclusive")
        payload
  | Rejected { open_id; reason; retry_after_ms; trace; detail } ->
      Format.fprintf ppf "rejected #%d %s retry=%dms trace=%016Lx%s" open_id
        (reject_reason_to_string reason)
        retry_after_ms trace
        (if detail = "" then "" else " " ^ detail)
  | Error { code; detail } ->
      Format.fprintf ppf "error %s: %s" (error_code_to_string code) detail
  | Pong { token } -> Format.fprintf ppf "pong %d" token
