(** Typed frames of the serve protocol, layered on {!Wire}.

    Client-to-server kinds live in [0x01..0x7F], server-to-client kinds
    in [0x81..0xFF].  Both directions have encoders and decoders: the
    daemon decodes client frames, while the selftest load generator and
    the probe client decode server frames.

    Decoding a structurally valid wire frame can still fail (unknown
    kind, truncated payload, trailing junk, out-of-range enum); those
    failures come back as [Error reason] and the daemon treats them
    exactly like a corrupt frame — quarantine. *)

type client =
  | Hello of { version : int }
  | Open of { open_id : int; protocol : string; n : int; trace : int64 }
      (** [open_id] is a client-chosen correlation token echoed in
          [Opened]/[Rejected], letting a client pipeline opens.
          [trace] is the session trace id to run under: [0L] adopts the
          id the server minted at [Hello] (the normal path); a non-zero
          id resumes a previous session's identity, which a freshly
          restarted daemon answers with [Rejected {reason = Evidence}]
          if that id was found mid-flight in a crash dump. *)
  | Msg of { session : int; node : int; payload : Core.Message.t }
  | Finish of { session : int }
  | Abort of { session : int }
  | Ping of { token : int }
  | Bye

type reject_reason =
  | Overloaded  (** admission control shed the session; retry later *)
  | Draining  (** daemon is shutting down and accepts no new sessions *)
  | Unknown_protocol
  | Bad_n
  | Session_limit  (** per-connection session cap reached *)
  | Evidence
      (** the trace id was found mid-flight in a crash dump: the
          daemon refuses to resume and returns the evidence summary in
          [Rejected.detail] instead of silently forgetting the session *)

type error_code =
  | Protocol_violation
  | Corrupt_frame
  | Credit_exceeded
  | Slow_consumer
  | Internal

type status = Decided | Degraded | Inconclusive
type timeout_kind = No_timeout | Idle_timeout | Deadline_timeout

type server =
  | Welcome of { version : int; trace : int64 }
      (** [trace] is the 64-bit session trace id minted for this
          connection — every span, credit stall and quarantine the
          connection's sessions produce shares it, in jsonl traces,
          flight dumps and metrics alike. *)
  | Opened of { open_id : int; session : int; credit : int }
  | Credit of { session : int; credit : int }
      (** grants [credit] further [Msg] frames on the session; the sum
          of outstanding grants is the client's send window. *)
  | Verdict of {
      session : int;
      status : status;
      timeout : timeout_kind;
      payload : string;  (** canonical rendering of the referee output,
          or the [Inconclusive] reason *)
      missing : int;
      malformed : int;
      duplicated : int;
      undetermined : int;
      trace : int64;
    }
  | Rejected of {
      open_id : int;
      reason : reject_reason;
      retry_after_ms : int;
      trace : int64;
      detail : string;
          (** for [Evidence]: the mid-flight summary decoded from the
              crash dump; empty for the other reasons *)
    }
  | Error of { code : error_code; detail : string }
      (** always followed by the server closing the connection *)
  | Pong of { token : int }

val version : int

val encode_client : client -> string
(** Full wire bytes (header + payload). *)

val encode_server : server -> string

val decode_client : kind:int -> string -> (client, string) result
val decode_server : kind:int -> string -> (server, string) result

val pp_client : Format.formatter -> client -> unit
val pp_server : Format.formatter -> server -> unit
val reject_reason_to_string : reject_reason -> string
val error_code_to_string : error_code -> string
