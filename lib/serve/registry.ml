open Core
module Graph = Refnet_graph.Graph
module Gio = Refnet_graph.Gio

type entry =
  | Entry : {
      protocol : 'a Core.Verdict.t Core.Protocol.t;
      render : 'a -> string;
    }
      -> entry

(* graph6 beyond this order would overflow the 64 KiB wire string field;
   fall back to a fingerprint summary that still pins the graph down for
   equality checks with overwhelming probability. *)
let graph6_render_max = 512

let render_graph g =
  let n = Graph.order g in
  if n <= graph6_render_max then "graph:" ^ Gio.to_graph6 g
  else begin
    let h = ref (Wire.fnv32 (string_of_int n)) in
    let mix v =
      h := !h lxor v;
      h := !h * 16777619 land 0xFFFFFFFF
    in
    Graph.iter_edges g (fun u v ->
        mix u;
        mix v);
    Printf.sprintf "graph-summary:n=%d;m=%d;fnv=%08x" n (Graph.size g) !h
  end

let render_graph_opt = function
  | Some g -> render_graph g
  | None -> "rejected"

let render_bool b = if b then "connected" else "disconnected"

(* A deliberately tiny protocol for load generation: each node sends its
   sealed degree; the referee sums them.  Exercises the whole serve
   path — seals, hardening, verdicts — at O(log n) bits per message. *)
let count_protocol : (int * int) Verdict.t Protocol.t =
  let local v =
    let w = Refnet_bits.Bit_writer.create () in
    Refnet_bits.Codes.write_fixed w
      ~width:(Refnet_bits.Codes.id_width (View.n v))
      (View.deg v);
    Message.seal ~n:(View.n v) ~id:(View.id v) (Message.of_writer w)
  in
  let referee =
    Protocol.streaming
      ~init:(fun ~n:_ -> (0, 0))
      ~absorb:(fun ~n (nodes, degsum) ~id msg ->
        match Message.unseal ~n ~id msg with
        | None -> raise Message.Malformed
        | Some m ->
            let r = Message.reader m in
            let d =
              Refnet_bits.Codes.read_fixed r
                ~width:(Refnet_bits.Codes.id_width n)
            in
            (nodes + 1, degsum + d))
      ~finish:(fun ~n:_ acc -> acc)
  in
  {
    Protocol.name = "serve-count+hardened";
    local;
    (* A faulted channel degrades to the partial census with the fault
       report attached — the census over absorbed nodes is sound, and
       the report says exactly how partial it is. *)
    referee =
      Protocol.harden_referee
        ~on_fault:(fun report partial ->
          match partial with
          | Some v -> Verdict.Degraded (v, report)
          | None ->
              Verdict.Inconclusive
                ("channel faults detected: " ^ Verdict.report_summary report))
        referee;
  }

let render_count (nodes, degsum) =
  Printf.sprintf "nodes=%d;degsum=%d" nodes degsum

let specs =
  [ "count"; "forest"; "degeneracy:<k>"; "bounded:<d>"; "sketch:<seed>" ]

(* Session-size caps.  The bound is whichever bites first: referee state
   (degeneracy holds an n^2-bit incidence structure), message size, or
   just sanity for a single one-round session. *)
let cap_count = 10_000_000
let cap_forest = 1_000_000
let cap_degeneracy = 4_096
let cap_bounded = 100_000
let cap_sketch = 65_536

let split_spec spec =
  match String.index_opt spec ':' with
  | None -> (spec, None)
  | Some i ->
      ( String.sub spec 0 i,
        Some (String.sub spec (i + 1) (String.length spec - i - 1)) )

let arg_int name = function
  | None -> Error (Printf.sprintf "%s needs an integer argument" name)
  | Some s -> (
      match int_of_string_opt s with
      | Some v when v >= 1 -> Ok v
      | Some _ -> Error (Printf.sprintf "%s argument must be >= 1" name)
      | None -> Error (Printf.sprintf "%s argument %S is not an integer" name s))

let resolve spec =
  match split_spec spec with
  | "count", None ->
      Ok
        ( cap_count,
          Entry { protocol = count_protocol; render = render_count } )
  | "forest", None ->
      Ok
        ( cap_forest,
          Entry
            { protocol = Forest_protocol.hardened; render = render_graph_opt }
        )
  | "degeneracy", arg -> (
      match arg_int "degeneracy" arg with
      | Error _ as e -> e
      | Ok k ->
          Ok
            ( cap_degeneracy,
              Entry
                {
                  protocol = Degeneracy_protocol.hardened ~k ();
                  render = render_graph_opt;
                } ))
  | "bounded", arg -> (
      match arg_int "bounded" arg with
      | Error _ as e -> e
      | Ok d ->
          Ok
            ( cap_bounded,
              Entry
                {
                  protocol = Bounded_degree.hardened ~max_degree:d;
                  render = render_graph_opt;
                } ))
  | "sketch", arg -> (
      match arg_int "sketch" arg with
      | Error _ as e -> e
      | Ok seed ->
          Ok
            ( cap_sketch,
              Entry
                {
                  protocol = Sketch_connectivity.hardened ~seed ();
                  render = render_bool;
                } ))
  | stem, _ ->
      Error
        (Printf.sprintf "unknown protocol %S (expected one of: %s)" stem
           (String.concat ", " specs))

let max_n spec =
  match resolve spec with Ok (cap, _) -> Some cap | Error _ -> None

let lookup ~spec ~n =
  match resolve spec with
  | Error _ as e -> e
  | Ok (cap, entry) ->
      if n < 1 then Error "session size n must be >= 1"
      else if n > cap then
        Error (Printf.sprintf "n=%d exceeds the %s cap of %d" n spec cap)
      else Ok entry
