(** The protocols a serve session may name, behind one existential.

    Every entry is a {e hardened} protocol — its referee returns a
    {!Core.Verdict.t}, so a session fed by a crashing, stalling or
    corrupting client still finishes into a sound
    [Degraded]/[Inconclusive] instead of raising.  [render] maps the
    verdict payload to the canonical string carried in the wire
    [Verdict] frame; renderings are deterministic, so the selftest can
    check a [Decided] payload against ground truth by string equality. *)

type entry =
  | Entry : {
      protocol : 'a Core.Verdict.t Core.Protocol.t;
      render : 'a -> string;
    }
      -> entry

(** Specs accepted by {!lookup}:
    - ["count"] — a minimal sealed degree-census protocol (load-generator
      fodder: tiny messages, O(1) referee state)
    - ["forest"] — {!Core.Forest_protocol.hardened}
    - ["degeneracy:<k>"] — {!Core.Degeneracy_protocol.hardened}
    - ["bounded:<d>"] — {!Core.Bounded_degree.hardened}
    - ["sketch:<seed>"] — {!Core.Sketch_connectivity.hardened}

    Each spec carries a hard cap on [n] (the degeneracy referee holds
    O(n^2) bits, graph renderings must fit a wire string field, ...);
    [lookup] rejects a session above the cap. *)
val lookup : spec:string -> n:int -> (entry, string) result

(** [specs] is the list of accepted spec shapes, for error messages and
    [--help]. *)
val specs : string list

(** [max_n spec] is the session-size cap the spec would be admitted
    under, if the spec is well-formed. *)
val max_n : string -> int option

(** [render_graph g] is the canonical graph rendering used by the
    reconstruction entries: exact graph6 for small orders, an
    order/size/FNV-fingerprint summary above that (wire strings are
    capped at 64 KiB).  Exposed so tests and the selftest compute
    expected payloads with the same function. *)
val render_graph : Refnet_graph.Graph.t -> string
