open Core
module Generators = Refnet_graph.Generators

type cfg = {
  sessions : int;
  conns : int;
  n : int;
  protocol : string;
  faulty : float;
  seed : int;
  templates : int;
}

let default_cfg =
  {
    sessions = 20_000;
    conns = 64;
    n = 8;
    protocol = "count";
    faulty = 0.;
    seed = 42;
    templates = 16;
  }

type outcome = {
  o_protocol : string;
  o_n : int;
  o_sessions : int;
  o_decided : int;
  o_degraded : int;
  o_inconclusive : int;
  o_aborted : int;
  o_quarantines : int;
  o_escapes : int;
  o_sheds : int;
  o_timeouts_idle : int;
  o_timeouts_deadline : int;
  o_late_frames : int;
  o_wrong_decided : int;
  o_clean_anomalies : int;
  o_unterminated : int;
  o_flight_recorded : int;
  o_flight_dropped : int;
  o_flight_findings : int; (* -1 when no recorder was attached *)
  o_flight_missing : int; (* verdicts with no flight note (drop-free runs) *)
  o_faulty : float;
  o_wall_s : float;
  o_rate : float;
}

(* ---------- session templates ---------- *)

type template = {
  t_msgs : Message.t array; (* clean local-phase output, index = id-1 *)
  t_expected : string; (* rendering of the fault-free verdict payload *)
}

let build_templates entry cfg =
  match entry with
  | Registry.Entry { protocol = p; render } ->
      Array.init cfg.templates (fun i ->
          let st = Random.State.make [| cfg.seed; 7919 * (i + 1) |] in
          (* trees exercise every registry protocol sensibly; every
             fourth template is a cycle so recognizers also see a
             rejecting input *)
          let g =
            if i mod 4 = 3 && cfg.n >= 3 then Generators.cycle cfg.n
            else Generators.random_tree st cfg.n
          in
          let msgs = Simulator.local_phase p g in
          let feed =
            Array.to_list msgs
            |> List.mapi (fun j m -> (j + 1, m))
            |> List.fold_left
                 (fun f (id, m) -> Protocol.feed f ~id m)
                 (Protocol.start p.Protocol.referee ~n:cfg.n)
          in
          let expected =
            match Protocol.finish feed with
            | Verdict.Decided a -> render a
            | Verdict.Degraded _ | Verdict.Inconclusive _ ->
                (* a clean in-order feed must decide; registry entries
                   are hardened protocols, so this is unreachable *)
                "unreachable:clean-run-did-not-decide"
          in
          { t_msgs = msgs; t_expected = expected })

(* ---------- chaos behaviours ---------- *)

type behaviour =
  | Clean
  | Node_faults
  | Crash_mid
  | Truncate_frame
  | Corrupt_byte
  | Stall

let behaviour_of st faulty =
  if Random.State.float st 1.0 >= faulty then Clean
  else
    match Random.State.int st 5 with
    | 0 -> Node_faults
    | 1 -> Crash_mid
    | 2 -> Truncate_frame
    | 3 -> Corrupt_byte
    | _ -> Stall

(* ---------- worker state machine ---------- *)

type phase =
  | Idle
  | Opening
  | Streaming of { sent : int; window : int }
  | Stalled
  | Awaiting

type job = {
  j_index : int; (* global session index *)
  j_behaviour : behaviour;
  j_template : template;
  j_deliveries : (int * Message.t) array; (* what this client will send *)
  j_finish : bool; (* send Finish after the stream *)
  j_cut : int; (* for Crash_mid/Truncate_frame: drop after this many *)
}

type worker = {
  w_id : int;
  mutable w_conn : Engine.conn_id option;
  mutable w_decoder : Wire.decoder;
  mutable w_session : int; (* server session id, -1 when none *)
  mutable w_phase : phase;
  mutable w_job : job option;
  mutable w_done : bool;
}

type counters = {
  mutable c_terminal : int;
  mutable c_wrong : int;
  mutable c_clean_anomaly : int;
  mutable c_verdicts : int;
  mutable c_aborted_jobs : int;
}

let tick_dt = 0.002

let default_engine_cfg =
  {
    Engine.default_config with
    Engine.deadline_s = 1.0;
    idle_timeout_s = 0.25;
    max_sessions = 8192;
  }

let job_for cfg templates index =
  let st = Random.State.make [| cfg.seed; (2 * index) + 1 |] in
  let b = behaviour_of st cfg.faulty in
  let t = templates.(index mod Array.length templates) in
  let in_order = Array.mapi (fun j m -> (j + 1, m)) t.t_msgs in
  let total = Array.length in_order in
  match b with
  | Clean ->
      {
        j_index = index;
        j_behaviour = b;
        j_template = t;
        j_deliveries = in_order;
        j_finish = true;
        j_cut = max_int;
      }
  | Node_faults ->
      let plan =
        Faults.random
          ~seed:(cfg.seed lxor (index * 2654435761))
          ~n:total ~crash:0.3 ~truncate:0.15 ~flip:0.1 ~duplicate:0.1
          ~spoof:0.05 ()
      in
      let deliveries, _ = Faults.apply plan t.t_msgs in
      {
        j_index = index;
        j_behaviour = b;
        j_template = t;
        j_deliveries = Array.of_list deliveries;
        j_finish = true;
        j_cut = max_int;
      }
  | Crash_mid | Truncate_frame ->
      {
        j_index = index;
        j_behaviour = b;
        j_template = t;
        j_deliveries = in_order;
        j_finish = false;
        j_cut = max 1 (total / 2);
      }
  | Corrupt_byte ->
      {
        j_index = index;
        j_behaviour = b;
        j_template = t;
        j_deliveries = in_order;
        j_finish = false;
        j_cut = max 1 (total / 2);
      }
  | Stall ->
      {
        j_index = index;
        j_behaviour = b;
        j_template = t;
        j_deliveries = in_order;
        j_finish = false;
        j_cut = max 1 (total / 2);
      }

let feed_str engine cid s =
  Engine.feed_bytes engine cid (Bytes.unsafe_of_string s) ~off:0
    ~len:(String.length s)

let corrupt_frame s =
  (* flip a bit inside the payload region so the header parses but the
     digest check fires *)
  let b = Bytes.of_string s in
  let i = min (Bytes.length b - 1) (Wire.header_bytes + 2) in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

let run ?(trace = Trace.null) ?metrics ?flight ?(engine_cfg = default_engine_cfg)
    cfg =
  match Registry.lookup ~spec:cfg.protocol ~n:cfg.n with
  | Error msg -> invalid_arg ("Selftest.run: " ^ msg)
  | Ok entry ->
      let templates = build_templates entry cfg in
      let vnow = ref 0.0 in
      let engine =
        Engine.create
          ~clock:(fun () -> !vnow)
          ~trace ?metrics ?flight engine_cfg
      in
      let next_job = ref 0 in
      let counters =
        {
          c_terminal = 0;
          c_wrong = 0;
          c_clean_anomaly = 0;
          c_verdicts = 0;
          c_aborted_jobs = 0;
        }
      in
      let workers =
        Array.init cfg.conns (fun w_id ->
            {
              w_id;
              w_conn = None;
              w_decoder = Wire.decoder ();
              w_session = -1;
              w_phase = Idle;
              w_job = None;
              w_done = false;
            })
      in
      let job_terminal w ~verdict ~payload =
        (match (w.w_job, verdict) with
        | Some j, Some status -> (
            counters.c_verdicts <- counters.c_verdicts + 1;
            (match status with
            | Frame.Decided ->
                if payload <> j.j_template.t_expected then
                  counters.c_wrong <- counters.c_wrong + 1
            | Frame.Degraded | Frame.Inconclusive -> ());
            match j.j_behaviour with
            | Clean ->
                if status <> Frame.Decided || payload <> j.j_template.t_expected
                then counters.c_clean_anomaly <- counters.c_clean_anomaly + 1
            | _ -> ())
        | Some j, None -> (
            counters.c_aborted_jobs <- counters.c_aborted_jobs + 1;
            (* a clean session must never end without a verdict *)
            match j.j_behaviour with
            | Clean -> counters.c_clean_anomaly <- counters.c_clean_anomaly + 1
            | _ -> ())
        | None, _ -> ());
        if w.w_job <> None then counters.c_terminal <- counters.c_terminal + 1;
        w.w_job <- None;
        w.w_session <- -1;
        w.w_phase <- Idle
      in
      let drop_conn w =
        (match w.w_conn with
        | Some cid -> Engine.close_conn engine cid
        | None -> ());
        w.w_conn <- None;
        w.w_decoder <- Wire.decoder ()
      in
      let handle_server_frames w =
        match w.w_conn with
        | None -> ()
        | Some cid ->
            let out = Engine.take_output engine cid in
            if out <> "" then
              Wire.push w.w_decoder (Bytes.unsafe_of_string out) ~off:0
                ~len:(String.length out);
            let continue = ref true in
            while !continue do
              match Wire.next w.w_decoder with
              | Wire.Awaiting -> continue := false
              | Wire.Corrupt _ ->
                  (* a server must never emit corrupt bytes; surface as
                     an anomaly by dropping the conn (job -> aborted) *)
                  job_terminal w ~verdict:None ~payload:"";
                  drop_conn w;
                  continue := false
              | Wire.Frame { kind; payload } -> (
                  match Frame.decode_server ~kind payload with
                  | Error _ ->
                      job_terminal w ~verdict:None ~payload:"";
                      drop_conn w;
                      continue := false
                  | Ok (Frame.Welcome _) | Ok (Frame.Pong _) -> ()
                  | Ok (Frame.Opened { session; credit; _ }) ->
                      if w.w_phase = Opening then begin
                        w.w_session <- session;
                        w.w_phase <- Streaming { sent = 0; window = credit }
                      end
                  | Ok (Frame.Credit { session; credit }) ->
                      if session = w.w_session then begin
                        match w.w_phase with
                        | Streaming { sent; window } ->
                            w.w_phase <-
                              Streaming { sent; window = window + credit }
                        | _ -> ()
                      end
                  | Ok (Frame.Verdict { session; status; payload; _ }) ->
                      if session = w.w_session then
                        job_terminal w ~verdict:(Some status) ~payload
                  | Ok (Frame.Rejected _) ->
                      (* admission said no: job ends typed; retry not
                         modelled, the shed counter carries the signal *)
                      job_terminal w ~verdict:None ~payload:""
                  | Ok (Frame.Error _) ->
                      (* typed quarantine: the conn is dead *)
                      job_terminal w ~verdict:None ~payload:"";
                      drop_conn w;
                      continue := false)
            done
      in
      let step_worker w =
        (match w.w_phase with
        | Idle ->
            if w.w_job = None && !next_job < cfg.sessions then begin
              w.w_job <- Some (job_for cfg templates !next_job);
              incr next_job
            end;
            if w.w_job = None then w.w_done <- true
            else begin
              (match w.w_conn with
              | Some _ -> ()
              | None -> (
                  match Engine.open_conn engine with
                  | Ok cid ->
                      w.w_conn <- Some cid;
                      w.w_decoder <- Wire.decoder ();
                      feed_str engine cid
                        (Frame.encode_client
                           (Frame.Hello { version = Frame.version }))
                  | Error _ -> ()));
              match (w.w_conn, w.w_job) with
              | Some cid, Some j ->
                  feed_str engine cid
                    (Frame.encode_client
                       (Frame.Open
                          {
                            open_id = j.j_index;
                            protocol = cfg.protocol;
                            n = cfg.n;
                            trace = 0L;
                          }));
                  w.w_phase <- Opening
              | _ -> ()
            end
        | Opening -> ()
        | Stalled -> ()
        | Awaiting -> ()
        | Streaming { sent; window } -> (
            match (w.w_conn, w.w_job) with
            | Some cid, Some j ->
                let total = Array.length j.j_deliveries in
                let stop = min total j.j_cut in
                let sent = ref sent and window = ref window in
                let cut = ref false in
                while (not !cut) && !sent < stop && !window > 0 do
                  let node, payload = j.j_deliveries.(!sent) in
                  let frame =
                    Frame.encode_client
                      (Frame.Msg { session = w.w_session; node; payload })
                  in
                  (match j.j_behaviour with
                  | Corrupt_byte when !sent = stop - 1 ->
                      feed_str engine cid (corrupt_frame frame);
                      cut := true
                  | Truncate_frame when !sent = stop - 1 ->
                      feed_str engine cid
                        (String.sub frame 0 (String.length frame / 2));
                      drop_conn w;
                      cut := true
                  | _ -> feed_str engine cid frame);
                  incr sent;
                  decr window
                done;
                if !cut then begin
                  match j.j_behaviour with
                  | Truncate_frame -> job_terminal w ~verdict:None ~payload:""
                  | _ -> w.w_phase <- Awaiting (* corrupt: await Error *)
                end
                else if !sent >= stop then
                  (match j.j_behaviour with
                  | Crash_mid ->
                      drop_conn w;
                      job_terminal w ~verdict:None ~payload:""
                  | Stall -> w.w_phase <- Stalled (* idle timeout resolves *)
                  | _ ->
                      if j.j_finish then begin
                        feed_str engine cid
                          (Frame.encode_client
                             (Frame.Finish { session = w.w_session }));
                        w.w_phase <- Awaiting
                      end
                      else w.w_phase <- Awaiting)
                else w.w_phase <- Streaming { sent = !sent; window = !window }
            | _ ->
                (* connection evaporated mid-stream *)
                job_terminal w ~verdict:None ~payload:""));
        handle_server_frames w
      in
      let t0 = Unix.gettimeofday () in
      let settle = ref 0 in
      let max_settle =
        (* enough virtual time for every deadline to fire after the last
           job is handed out, with slack *)
        int_of_float ((engine_cfg.Engine.deadline_s /. tick_dt) *. 4.0) + 1000
      in
      let all_done () = Array.for_all (fun w -> w.w_done) workers in
      while (not (all_done ())) && !settle < max_settle do
        Array.iter (fun w -> if not w.w_done then step_worker w) workers;
        Engine.tick engine;
        Array.iter (fun w -> if not w.w_done then handle_server_frames w) workers;
        vnow := !vnow +. tick_dt;
        if !next_job >= cfg.sessions then incr settle
      done;
      let wall = Unix.gettimeofday () -. t0 in
      (* anything still in flight after settling is unterminated *)
      let unterminated =
        Array.fold_left
          (fun acc w -> if w.w_job <> None then acc + 1 else acc)
          0 workers
      in
      let s = Engine.stats engine in
      let wall = if wall <= 0. then 1e-9 else wall in
      (* Flight audit: the in-memory dump must decode finding-free, and
         on a drop-free run every verdict the engine issued must have
         left a terminal note in the rings — i.e. every session that
         reached a disposition left decodable evidence. *)
      let fl_recorded, fl_dropped, fl_findings, fl_missing =
        match flight with
        | None -> (0, 0, -1, 0)
        | Some f ->
            let d = Flight.decode (Flight.dump f) in
            let verdict_notes =
              List.fold_left
                (fun acc it ->
                  match it.Flight.i_note with
                  | Some ("verdict", _) -> acc + 1
                  | _ -> acc)
                0 d.Flight.d_items
            in
            let expected =
              s.Engine.decided + s.Engine.degraded + s.Engine.inconclusive
            in
            let missing =
              if d.Flight.d_dropped = 0 then max 0 (expected - verdict_notes)
              else 0
            in
            ( d.Flight.d_recorded,
              d.Flight.d_dropped,
              List.length d.Flight.d_findings,
              missing )
      in
      {
        o_protocol = cfg.protocol;
        o_n = cfg.n;
        o_sessions = counters.c_terminal;
        o_decided = s.Engine.decided;
        o_degraded = s.Engine.degraded;
        o_inconclusive = s.Engine.inconclusive;
        o_aborted = s.Engine.aborted;
        o_quarantines = s.Engine.quarantines;
        o_escapes = s.Engine.quarantine_escapes;
        o_sheds = s.Engine.sheds;
        o_timeouts_idle = s.Engine.timeouts_idle;
        o_timeouts_deadline = s.Engine.timeouts_deadline;
        o_late_frames = s.Engine.late_frames;
        o_wrong_decided = counters.c_wrong;
        o_clean_anomalies = counters.c_clean_anomaly;
        o_unterminated = unterminated;
        o_flight_recorded = fl_recorded;
        o_flight_dropped = fl_dropped;
        o_flight_findings = fl_findings;
        o_flight_missing = fl_missing;
        o_faulty = cfg.faulty;
        o_wall_s = wall;
        o_rate = float_of_int counters.c_terminal /. wall;
      }

let passed ?min_rate o =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if o.o_wrong_decided > 0 then
    fail "%d Decided verdicts contradicted ground truth" o.o_wrong_decided
  else if o.o_escapes > 0 then
    fail "%d exceptions escaped to the engine shell" o.o_escapes
  else if o.o_clean_anomalies > 0 then
    fail "%d fault-free sessions did not decide correctly" o.o_clean_anomalies
  else if o.o_unterminated > 0 then
    fail "%d sessions never reached a terminal state" o.o_unterminated
  else if o.o_flight_findings > 0 then
    fail "%d findings decoding the flight dump" o.o_flight_findings
  else if o.o_flight_missing > 0 then
    fail "%d verdicts left no flight-recorder evidence" o.o_flight_missing
  else
    match min_rate with
    | Some r when o.o_rate < r ->
        fail "throughput %.0f sessions/s below the %.0f floor" o.o_rate r
    | _ -> Ok ()

let to_json o =
  Printf.sprintf
    "{\"protocol\": %S, \"n\": %d, \"sessions\": %d, \"decided\": %d, \
     \"degraded\": %d, \"inconclusive\": %d, \"aborted\": %d, \
     \"quarantines\": %d, \"quarantine_escapes\": %d, \"sheds\": %d, \
     \"timeouts_idle\": %d, \"timeouts_deadline\": %d, \"late_frames\": %d, \
     \"wrong_decided\": %d, \"clean_anomalies\": %d, \"unterminated\": %d, \
     \"flight_recorded\": %d, \"flight_dropped\": %d, \
     \"flight_findings\": %d, \"flight_missing\": %d, \
     \"faulty\": %.3f, \"wall_s\": %.6f, \"rate_per_s\": %.1f}"
    o.o_protocol o.o_n o.o_sessions o.o_decided o.o_degraded o.o_inconclusive
    o.o_aborted o.o_quarantines o.o_escapes o.o_sheds o.o_timeouts_idle
    o.o_timeouts_deadline o.o_late_frames o.o_wrong_decided o.o_clean_anomalies
    o.o_unterminated o.o_flight_recorded o.o_flight_dropped o.o_flight_findings
    o.o_flight_missing o.o_faulty o.o_wall_s o.o_rate

let pp ppf o =
  Format.fprintf ppf
    "@[<v>protocol %s n=%d: %d sessions in %.2fs (%.0f/s)@,\
     verdicts: %d decided, %d degraded, %d inconclusive; %d aborted@,\
     chaos: %.0f%% faulty, %d quarantines, %d sheds, %d idle + %d deadline \
     timeouts, %d late frames@,\
     invariants: %d wrong decided, %d clean anomalies, %d unterminated, %d \
     escapes@,\
     flight: %d recorded, %d dropped, %d findings, %d missing@]"
    o.o_protocol o.o_n o.o_sessions o.o_wall_s o.o_rate o.o_decided o.o_degraded
    o.o_inconclusive o.o_aborted (o.o_faulty *. 100.) o.o_quarantines o.o_sheds
    o.o_timeouts_idle o.o_timeouts_deadline o.o_late_frames o.o_wrong_decided
    o.o_clean_anomalies o.o_unterminated o.o_escapes o.o_flight_recorded
    o.o_flight_dropped o.o_flight_findings o.o_flight_missing
