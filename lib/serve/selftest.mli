(** In-process load generator + chaos campaign for the serve engine.

    The generator drives {!Engine} through the {e real} byte path —
    frames are encoded to wire bytes, pushed through [feed_bytes], and
    server frames are decoded back from [take_output] — so the selftest
    exercises exactly what a socket client exercises, minus the kernel.
    The engine runs on an injected {e virtual} clock, so timeout paths
    fire deterministically; only the throughput measurement uses the
    wall clock.

    Chaos mode gives a configurable fraction of sessions a hostile
    behaviour, reusing {!Core.Faults} plans for in-model channel faults
    and adding client-level ones:
    - [`Node_faults] — deliveries mangled by a seeded
      crash/truncate/flip/duplicate/spoof plan
    - [`Crash_mid] — connection dropped mid-stream
    - [`Truncate_frame] — connection dropped inside a frame boundary
    - [`Corrupt_byte] — a payload byte flipped, tripping the frame
      digest and the quarantine path
    - [`Stall] — messages stop and the client never finishes; the
      session must resolve by idle timeout

    Soundness bookkeeping: every [Decided] payload is compared against
    the template's fault-free rendering (string equality) — one mismatch
    is one counted lie.  The run fails if any lie, quarantine escape,
    unterminated session or clean-session anomaly is observed. *)

type cfg = {
  sessions : int;
  conns : int;  (** concurrent client workers *)
  n : int;  (** nodes per session *)
  protocol : string;  (** a {!Registry} spec *)
  faulty : float;  (** fraction of sessions given a chaos behaviour *)
  seed : int;
  templates : int;  (** distinct precomputed session inputs to cycle *)
}

val default_cfg : cfg

(** The engine config {!run} uses unless overridden: the default daemon
    config with short virtual-clock timeouts and a deeper admission
    cap. *)
val default_engine_cfg : Engine.config

type outcome = {
  o_protocol : string;
  o_n : int;
  o_sessions : int;  (** sessions that reached a terminal state *)
  o_decided : int;
  o_degraded : int;
  o_inconclusive : int;
  o_aborted : int;
  o_quarantines : int;
  o_escapes : int;
  o_sheds : int;
  o_timeouts_idle : int;
  o_timeouts_deadline : int;
  o_late_frames : int;
  o_wrong_decided : int;  (** [Decided] payloads that contradicted
                              ground truth — must be zero *)
  o_clean_anomalies : int;
      (** fault-free sessions that did not end [Decided]-equal-to-truth *)
  o_unterminated : int;  (** sessions with no verdict and no typed end *)
  o_flight_recorded : int;  (** flight-recorder lifetime entries *)
  o_flight_dropped : int;  (** ring overwrites before the post-run dump *)
  o_flight_findings : int;
      (** decode findings on the post-run dump — must be zero; [-1]
          when no recorder was attached *)
  o_flight_missing : int;
      (** verdicts the engine issued that left no terminal note in the
          rings; only checked on drop-free runs, must be zero *)
  o_faulty : float;
  o_wall_s : float;
  o_rate : float;  (** terminal sessions per wall-clock second *)
}

(** [run ?trace ?metrics ?flight ?engine_cfg cfg] executes the
    campaign.  The engine config defaults to {!Engine.default_config}
    tightened with short (virtual) timeouts.  When [flight] is given
    the engine records into it and the post-run outcome audits the
    dump: it must decode without findings, and (drop-free runs) every
    verdict must have left a terminal note — the refuse-with-evidence
    path depends on exactly this property. *)
val run :
  ?trace:Core.Trace.sink ->
  ?metrics:Core.Metrics.t ->
  ?flight:Core.Flight.t ->
  ?engine_cfg:Engine.config ->
  cfg ->
  outcome

(** [passed ?min_rate o] is [Ok ()] when the robustness invariants held
    (no wrong [Decided], no quarantine escapes, no unterminated
    sessions, no clean anomalies, no flight decode findings or missing
    evidence) and, when [min_rate] is given, the measured rate reached
    it. *)
val passed : ?min_rate:float -> outcome -> (unit, string) result

val to_json : outcome -> string
val pp : Format.formatter -> outcome -> unit
