(* Byte-level wire framing for the serve daemon.  See wire.mli for the
   frame layout.  Everything here is byte-aligned scaffolding around the
   bit-exact Message payloads; the bit layer itself stays in
   lib/bits. *)

let magic = 0xF5
let header_bytes = 10
let default_max_frame = 1 lsl 20

(* Same FNV-1a construction as Message.seal, but over bytes instead of
   bit chunks: transport-layer error detection, not authentication. *)
let fnv_offset = 0x811c9dc5
let fnv_prime = 16777619
let mask32 = 0xFFFFFFFF

let fnv32 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime land mask32)
    s;
  !h

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let encode ~kind payload =
  if kind < 0 || kind > 0xFF then
    invalid_arg "Wire.encode: kind must fit in one byte";
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_char b (Char.chr magic);
  Buffer.add_char b (Char.chr kind);
  put_u32 b (String.length payload);
  put_u32 b (fnv32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

type step =
  | Frame of { kind : int; payload : string }
  | Awaiting
  | Corrupt of string

type decoder = {
  mutable buf : Bytes.t;
  mutable start : int; (* first undecoded byte *)
  mutable fill : int; (* one past the last received byte *)
  max_frame : int;
  mutable poisoned : string option;
}

let decoder ?(max_frame = default_max_frame) () =
  { buf = Bytes.create 4096; start = 0; fill = 0; max_frame; poisoned = None }

let buffered d = d.fill - d.start

let ensure_room d extra =
  let need = buffered d + extra in
  if d.start > 0 && (d.start = d.fill || need > Bytes.length d.buf) then begin
    (* compact before growing: steady-state streams never reallocate *)
    Bytes.blit d.buf d.start d.buf 0 (buffered d);
    d.fill <- buffered d;
    d.start <- 0
  end;
  if d.fill + extra > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf * 2) in
    while d.fill + extra > !cap do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit d.buf 0 nb 0 d.fill;
    d.buf <- nb
  end

let push d b ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length b then
    invalid_arg "Wire.push: bad slice";
  if d.poisoned = None then begin
    ensure_room d len;
    Bytes.blit b off d.buf d.fill len;
    d.fill <- d.fill + len
  end

let get_u32 buf off =
  (Char.code (Bytes.get buf off) lsl 24)
  lor (Char.code (Bytes.get buf (off + 1)) lsl 16)
  lor (Char.code (Bytes.get buf (off + 2)) lsl 8)
  lor Char.code (Bytes.get buf (off + 3))

let poison d msg =
  d.poisoned <- Some msg;
  (* drop the buffer: a corrupt stream cannot be resynchronized *)
  d.start <- 0;
  d.fill <- 0;
  Corrupt msg

let next d =
  match d.poisoned with
  | Some msg -> Corrupt msg
  | None ->
      if buffered d < header_bytes then Awaiting
      else begin
        let m = Char.code (Bytes.get d.buf d.start) in
        if m <> magic then
          poison d (Printf.sprintf "bad magic byte 0x%02X" m)
        else begin
          let kind = Char.code (Bytes.get d.buf (d.start + 1)) in
          let len = get_u32 d.buf (d.start + 2) in
          let digest = get_u32 d.buf (d.start + 6) in
          if len > d.max_frame then
            poison d
              (Printf.sprintf "declared payload %d exceeds limit %d" len
                 d.max_frame)
          else if buffered d < header_bytes + len then Awaiting
          else begin
            let payload =
              Bytes.sub_string d.buf (d.start + header_bytes) len
            in
            if fnv32 payload <> digest then
              poison d "payload digest mismatch"
            else begin
              d.start <- d.start + header_bytes + len;
              Frame { kind; payload }
            end
          end
        end
      end

module Put = struct
  type t = Buffer.t

  let create () = Buffer.create 64
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

  let u16 b v =
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char b (Char.chr (v land 0xFF))

  let u32 = put_u32

  let u64 b v =
    put_u32 b (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF);
    put_u32 b (Int64.to_int v land 0xFFFFFFFF)

  let str b s =
    if String.length s > 0xFFFF then
      invalid_arg "Wire.Put.str: string longer than 65535 bytes";
    u16 b (String.length s);
    Buffer.add_string b s

  let bits b m =
    let len = Core.Message.bits m in
    u32 b len;
    let r = Core.Message.reader m in
    let acc = ref 0 and nacc = ref 0 in
    for _ = 1 to len do
      acc :=
        (!acc lsl 1) lor (if Refnet_bits.Bit_reader.read_bit r then 1 else 0);
      incr nacc;
      if !nacc = 8 then begin
        Buffer.add_char b (Char.chr !acc);
        acc := 0;
        nacc := 0
      end
    done;
    if !nacc > 0 then Buffer.add_char b (Char.chr (!acc lsl (8 - !nacc)))

  let contents = Buffer.contents
end

module Get = struct
  type t = { s : string; mutable pos : int }

  let create s = { s; pos = 0 }

  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

  let take g n =
    if g.pos + n > String.length g.s then
      Error
        (Printf.sprintf "payload truncated: need %d bytes at offset %d" n
           g.pos)
    else begin
      let off = g.pos in
      g.pos <- g.pos + n;
      Ok off
    end

  let u8 g =
    let* off = take g 1 in
    Ok (Char.code g.s.[off])

  let u16 g =
    let* off = take g 2 in
    Ok ((Char.code g.s.[off] lsl 8) lor Char.code g.s.[off + 1])

  let u32 g =
    let* off = take g 4 in
    Ok
      ((Char.code g.s.[off] lsl 24)
      lor (Char.code g.s.[off + 1] lsl 16)
      lor (Char.code g.s.[off + 2] lsl 8)
      lor Char.code g.s.[off + 3])

  let u64 g =
    let* hi = u32 g in
    let* lo = u32 g in
    Ok
      (Int64.logor
         (Int64.shift_left (Int64.of_int hi) 32)
         (Int64.of_int lo))

  let str g =
    let* len = u16 g in
    let* off = take g len in
    Ok (String.sub g.s off len)

  let bits g =
    let* len = u32 g in
    (* the declared bit length is attacker-controlled: [take] rejects it
       against the bytes actually present, so a hostile header cannot
       force a huge allocation (frames are already size-capped) *)
    let nbytes = (len + 7) / 8 in
    let* off = take g nbytes in
    let w = Refnet_bits.Bit_writer.create () in
    for i = 0 to len - 1 do
      let c = Char.code g.s.[off + (i / 8)] in
      Refnet_bits.Bit_writer.add_bit w (c land (0x80 lsr (i mod 8)) <> 0)
    done;
    Ok (Core.Message.of_writer w)

  let finished g = g.pos = String.length g.s
end
