(** Byte-level wire framing for [refnet serve].

    A frame is a 10-byte header followed by the payload:

    {v
      offset  size  field
      0       1     magic (0xF5)
      1       1     kind  (see {!Frame} for the kind space)
      2       4     payload length, big-endian
      6       4     FNV-1a 32-bit digest of the payload, big-endian
      10      len   payload bytes
    v}

    The digest is the same error-{e detecting} FNV-1a construction as
    {!Core.Message.seal}, applied at the transport layer: a flipped or
    truncated byte anywhere in a frame is caught before the payload is
    even parsed, so the daemon can quarantine the connection instead of
    feeding garbage to a session.  It is not a MAC.

    Decoding never raises: the incremental {!decoder} returns a typed
    {!step}, and the payload cursor ({!Get}) folds every failure into
    [Error].  This is the invariant the frame fuzzer in [test_fuzz]
    locks down — arbitrary bytes produce [`Frame]/[`Awaiting]/[`Corrupt],
    never an exception. *)

val magic : int
val header_bytes : int

(** [fnv32 s] is the FNV-1a 32-bit digest of [s]. *)
val fnv32 : string -> int

(** [encode ~kind payload] is the full frame as bytes-in-a-string.
    @raise Invalid_argument if [kind] is outside [0..255]. *)
val encode : kind:int -> string -> string

(** Incremental frame decoder over a growing byte stream. *)
type decoder

(** [decoder ~max_frame ()] — frames whose declared payload length
    exceeds [max_frame] (default 1 MiB) are corrupt: a hostile length
    must not make the daemon buffer unboundedly. *)
val decoder : ?max_frame:int -> unit -> decoder

(** [push d b ~off ~len] appends received bytes. *)
val push : decoder -> bytes -> off:int -> len:int -> unit

(** [buffered d] is the number of bytes held but not yet decoded. *)
val buffered : decoder -> int

type step =
  | Frame of { kind : int; payload : string }
  | Awaiting  (** not enough bytes yet — read more *)
  | Corrupt of string
      (** bad magic, oversized declared length, or digest mismatch.
          The stream cannot be resynchronized; the connection must be
          quarantined. *)

(** [next d] extracts the next complete frame.  After [Corrupt] the
    decoder sticks: every further [next] returns the same error. *)
val next : decoder -> step

(** Payload field writers (byte-aligned, big-endian). *)
module Put : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit

  (** [u64 p v] writes all 64 bits big-endian — session trace ids
      travel whole. *)
  val u64 : t -> int64 -> unit

  (** [str p s] writes a 16-bit length then the bytes.
      @raise Invalid_argument if [String.length s > 65535]. *)
  val str : t -> string -> unit

  (** [bits p m] writes a message as a 32-bit bit-length followed by the
      bits packed most-significant-first into [ceil(len/8)] bytes — the
      exact bit string round-trips, preserving the model's "messages are
      genuine bit strings" accounting across the wire. *)
  val bits : t -> Core.Message.t -> unit

  val contents : t -> string
end

(** Payload field readers.  Every reader returns [Error _] on truncation
    or an out-of-range value instead of raising. *)
module Get : sig
  type t

  val create : string -> t
  val u8 : t -> (int, string) result
  val u16 : t -> (int, string) result
  val u32 : t -> (int, string) result
  val u64 : t -> (int64, string) result
  val str : t -> (string, string) result
  val bits : t -> (Core.Message.t, string) result

  (** [finished g] — all payload bytes consumed (trailing junk in a
      frame is a decode error at the {!Frame} layer). *)
  val finished : t -> bool
end
