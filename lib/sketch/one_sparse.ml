open Refnet_bits

type t = { z : int; s0 : Field.t; s1 : Field.t; s2 : Field.t }

let create ~z = { z = Field.of_int z; s0 = Field.zero; s1 = Field.zero; s2 = Field.zero }

let update t ~index ~delta =
  if index < 0 then invalid_arg "One_sparse.update: negative index";
  let d = Field.of_int delta in
  {
    t with
    s0 = Field.add t.s0 d;
    s1 = Field.add t.s1 (Field.mul d (Field.of_int index));
    s2 = Field.add t.s2 (Field.mul d (Field.pow t.z index));
  }

let combine a b =
  if a.z <> b.z then invalid_arg "One_sparse.combine: mismatched evaluation points";
  { a with s0 = Field.add a.s0 b.s0; s1 = Field.add a.s1 b.s1; s2 = Field.add a.s2 b.s2 }

let is_zero t = t.s0 = Field.zero && t.s1 = Field.zero && t.s2 = Field.zero

(* Map a field element to the symmetric range. *)
let symmetric v = if v > (Field.p - 1) / 2 then v - Field.p else v

let recover t =
  if is_zero t then None
  else if t.s0 = Field.zero then None
  else begin
    (* Candidate index i = s1 / s0; fingerprint check s2 = s0 * z^i. *)
    (* lint: allow exn-escape -- s0 <> zero was checked above; inv's raise is its own domain guard *)
    let i = Field.mul t.s1 (Field.inv t.s0) in
    if Field.equal t.s2 (Field.mul t.s0 (Field.pow t.z i)) then Some (i, symmetric t.s0)
    else None
  end

let bits = 3 * 31

let write w t =
  Codes.write_fixed w ~width:31 t.s0;
  Codes.write_fixed w ~width:31 t.s1;
  Codes.write_fixed w ~width:31 t.s2

let read r ~z =
  let s0 = Codes.read_fixed r ~width:31 in
  let s1 = Codes.read_fixed r ~width:31 in
  let s2 = Codes.read_fixed r ~width:31 in
  { z = Field.of_int z; s0; s1; s2 }
