(* Lint fixture: must trip [bit-accounting] (twice) and no other rule. *)

let raw n = Bytes.make n '\000'
let sneak () = Buffer.create 16
