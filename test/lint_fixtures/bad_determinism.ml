(* Lint fixture: must trip [determinism] (four times) and no other rule.
   Parsed, never compiled — the free identifiers are deliberate. *)

let () = Random.self_init ()
let pick n = Random.int n
let stamp () = Unix.gettimeofday ()
let racy f = Domain.spawn f
