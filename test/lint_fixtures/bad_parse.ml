(* Lint fixture: malformed source must yield a [parse-error] finding,
   never a crash. *)

let broken = (
