(* Lint fixture: must trip [referee-totality] (three times) and no other
   rule.  Parsed, never compiled. *)

let head xs = List.hd xs
let boom () = failwith "referee gave up"
let force = function Some x -> x | None -> assert false
