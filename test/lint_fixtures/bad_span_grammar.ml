(* Lint fixture: must trip [span-grammar] (three times) and no other
   rule.  Parsed, never compiled — the free identifiers are deliberate. *)

let name = "degeneracy-reconstruct"
let label = Printf.sprintf "bounded-degree-%s" "three"
let p = Protocol.rename "coalition-connectivity[parts=0]" q
