(* Lint fixture: a suppression naming an unknown rule must itself be
   reported (as [parse-error]) rather than silently ignored. *)

let x = 1 (* lint: allow no-such-rule -- typo in the rule name *)
