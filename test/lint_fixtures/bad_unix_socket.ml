(* Lint fixture: must trip [determinism] (three times) and no other
   rule.  Socket syscalls outside the serve transport — this fixture's
   path is not in Policy.unix_ok, so every syscall fires. *)

let fd () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
let serve fd = Unix.listen fd 16
let poll readers = Unix.select readers [] [] 0.1
