(* Lint fixture: must trip [view-boundary] (four times) and no other
   rule.  Parsed, never compiled — the free identifiers are
   deliberate. *)

let smuggled_view ~n = View.make ~n ~id:1 ~neighbors:[ 2; 3 ]

let cheating_protocol g referee =
  { name = "forest-reconstruct"; local = (fun _view -> Graph.neighbors g 1); referee }

(* The Bcc per-round node functions are node-local too. *)
let cheating_bcc g budget init referee =
  {
    name = "bcc-connectivity-1";
    budget;
    init;
    send = (fun ~round:_ s -> (Message.of_int (Graph.order g), s));
    receive =
      (fun ~round:_ ~broadcast:_ s ->
        ignore (Graph_source.order g);
        s);
    referee;
  }
