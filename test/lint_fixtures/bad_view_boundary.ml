(* Lint fixture: must trip [view-boundary] (twice) and no other rule.
   Parsed, never compiled — the free identifiers are deliberate. *)

let smuggled_view ~n = View.make ~n ~id:1 ~neighbors:[ 2; 3 ]

let cheating_protocol g referee =
  { name = "forest-reconstruct"; local = (fun _view -> Graph.neighbors g 1); referee }
