(* BAD (deep): hard-blocking calls reachable from the select loop.  Fed
   to the deep pass under the path lib/serve/daemon.ml so the
   policy-gated root [run] applies: Unix.sleepf is tier-A blocking
   anywhere, and the Unix.read in [drain] sits outside every
   allowlisted poll point. *)

let pause () = Unix.sleepf 0.05

let drain fd buf = ignore (Unix.read fd buf 0 (Bytes.length buf))

let run listen =
  let _ = Unix.select [ listen ] [] [] 0.1 in
  pause ();
  drain listen (Bytes.create 16)
