(* BAD (deep): an undocumented exception escapes a streaming referee's
   absorb through two calls — the hardened combinators would not absorb
   Overflow, so a hostile message could crash the referee. *)

exception Overflow

let bump n = if n > 7 then raise Overflow else n + 1

let absorb_one acc v = bump acc + v

let protocol () =
  Protocol.streaming
    ~init:(fun _n -> 0)
    ~absorb:(fun acc v -> absorb_one acc v)
    ~finish:(fun acc -> acc)
