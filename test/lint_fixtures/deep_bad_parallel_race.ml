(* BAD (deep): mutable state captured by a closure handed to the
   Parallel pool, written without any item- or slot-indexed partition —
   the transcript depends on the pool width. *)

let total_hits = ref 0

let tally results =
  let seen = Hashtbl.create 8 in
  Parallel.iter_range 0 (Array.length results) (fun i ->
      total_hits := !total_hits + results.(i);
      Hashtbl.replace seen results.(i) true);
  Hashtbl.length seen
