(* GOOD (deep): descriptor I/O only fires inside [run] (an allowlisted
   poll point when this file is fed as lib/serve/daemon.ml), on
   descriptors select reported ready. *)

let run listen =
  let buf = Bytes.create 16 in
  let rec loop () =
    match Unix.select [ listen ] [] [] 0.1 with
    | [], _, _ -> loop ()
    | ready :: _, _, _ ->
      ignore (Unix.read ready buf 0 16);
      ignore (Unix.write ready buf 0 16);
      loop ()
  in
  loop ()
