(* GOOD (deep): the same raise is absorbed before it reaches the
   referee boundary — once by a try handler inside a helper, once by a
   match-with-exception around the scrutinee. *)

exception Overflow

let bump n = if n > 7 then raise Overflow else n + 1

let safe_bump n = try bump n with Overflow -> n

let protocol () =
  Protocol.streaming
    ~init:(fun _n -> 0)
    ~absorb:(fun acc v -> safe_bump (acc + v))
    ~finish:(fun acc -> match bump acc with x -> x | exception Overflow -> acc)
