(* GOOD (deep): every captured write is partitioned — the index is the
   item index or a local derived from it (the simulator's idiom), both
   for an inline closure and for a same-file function passed by name. *)

let scatter order src =
  let out = Array.make (Array.length src) 0 in
  Parallel.iter_range 0 (Array.length src) (fun i ->
      let slot = order.(i) in
      out.(slot) <- src.(i));
  out

let out = Array.make 8 0

let fill i = out.(i) <- i * i

let all () = Parallel.iter_range 0 8 fill
