(* Lint fixture: the [bit-accounting] rule must stay silent here —
   bytes flow through Message only.  Parsed, never compiled. *)

let packet v = Message.of_int v
let width m = Message.bits m
