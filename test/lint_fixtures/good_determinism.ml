(* Lint fixture: the [determinism] rule must stay silent here.
   Seeded Random.State is the sanctioned source of randomness. *)

let rng = Random.State.make [| 0x5eed |]
let pick n = Random.State.int rng n
