(* Lint fixture: the [referee-totality] rule must stay silent here —
   total variants of the patterns in the bad twin. *)

let head = function [] -> None | x :: _ -> Some x
let force ~default = function Some x -> x | None -> default
