(* Lint fixture: the [span-grammar] rule must stay silent here —
   budgeted, decorated and foreign labels are all fine.
   Parsed, never compiled — the free identifiers are deliberate. *)

let name = "degeneracy-3-reconstruct"
let label = Printf.sprintf "coalition-connectivity[parts=%d]" 4
let sealed = Protocol.rename "forest-recognize+sealed" q
let foreign = { name = "my-experimental-protocol"; local = ignore; referee = r }
