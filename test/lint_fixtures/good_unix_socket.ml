(* Lint fixture: the [determinism] syscall rule must stay silent here.
   Pure Unix values — error rendering, address constants — are not
   syscalls; handling a Unix_error is fine anywhere. *)

let describe = function
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | _ -> "unknown"

let loopback = Unix.inet_addr_loopback
