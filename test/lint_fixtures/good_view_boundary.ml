(* Lint fixture: the [view-boundary] rule must stay silent here.
   Parsed, never compiled — the free identifiers are deliberate. *)

let well_behaved referee =
  { name = "forest-reconstruct";
    local = (fun view -> Message.of_int (View.id view + View.n view));
    referee
  }
