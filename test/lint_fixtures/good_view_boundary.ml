(* Lint fixture: the [view-boundary] rule must stay silent here.
   Parsed, never compiled — the free identifiers are deliberate. *)

let well_behaved referee =
  { name = "forest-reconstruct";
    local = (fun view -> Message.of_int (View.id view + View.n view));
    referee
  }

(* Bcc node functions reading only their view are fine; the
   referee-side fields are not node-local and may probe graph
   representations. *)
let well_behaved_bcc budget init referee =
  {
    name = "bcc-connectivity-1";
    budget;
    init;
    send = (fun ~round:_ s -> (Message.of_int (View.deg (state_view s)), s));
    receive = (fun ~round:_ ~broadcast s -> push_extra s broadcast);
    referee;
  }
