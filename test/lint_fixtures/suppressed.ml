(* Lint fixture: both suppression forms must silence their findings,
   so this file lints clean despite the violations below. *)

let head xs = List.hd xs (* lint: allow referee-totality -- fixture: same-line form *)

(* lint: allow determinism -- fixture: standalone form covers the next line *)
let pick n = Random.int n
