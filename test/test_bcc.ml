(* The broadcast congested clique engine: adaptive two-round
   reconstruction (ported from the retired Multi_round module, same
   outputs), deterministic O(1)-round connectivity against oracles up to
   n = 10^5, budget enforcement, cross-backend/chunk/width transcript
   equality, fault degradation, and the [round=] audit grammar. *)

open Refnet_bits
open Refnet_graph

let graph_opt =
  Alcotest.option (Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal)

let bool_opt = Alcotest.(option bool)

(* ---------- degree bound (round-1 inference) ---------- *)

let test_degree_bound_values () =
  (* Star K_{1,5}: degrees 5,1,1,1,1,1 -> only 2 vertices of degree >= 1,
     so bound = 1 (matches degeneracy). *)
  Alcotest.(check int) "star" 1 (Core.Bcc.Adaptive_degeneracy.degree_bound [| 5; 1; 1; 1; 1; 1 |]);
  (* K4: degrees all 3 -> 4 vertices of degree >= 3 -> bound 3. *)
  Alcotest.(check int) "K4" 3 (Core.Bcc.Adaptive_degeneracy.degree_bound [| 3; 3; 3; 3 |]);
  Alcotest.(check int) "edgeless" 0 (Core.Bcc.Adaptive_degeneracy.degree_bound [| 0; 0 |]);
  Alcotest.(check int) "empty" 0 (Core.Bcc.Adaptive_degeneracy.degree_bound [||])

let test_degree_bound_dominates_degeneracy () =
  List.iter
    (fun g ->
      let degrees = Array.of_list (List.map (Graph.degree g) (Graph.vertices g)) in
      Alcotest.(check bool) "bound >= degeneracy" true
        (Core.Bcc.Adaptive_degeneracy.degree_bound degrees >= Degeneracy.degeneracy g))
    [
      Generators.petersen ();
      Generators.grid 4 4;
      Generators.complete 6;
      Generators.random_apollonian (Random.State.make [| 5 |]) 20;
    ]

(* ---------- adaptive two-round reconstruction ---------- *)

let run_adaptive g = Core.Bcc.run (Core.Bcc.Adaptive_degeneracy.protocol ()) g

let test_adaptive_reconstructs_without_k () =
  (* The paper's protocol needs k known a priori; two rounds discover it. *)
  List.iter
    (fun (name, g) ->
      let out, _ = run_adaptive g in
      Alcotest.check graph_opt name (Some g) out)
    [
      ("tree", Generators.random_tree (Random.State.make [| 1 |]) 25);
      ("grid", Generators.grid 4 4);
      ("K6 (dense!)", Generators.complete 6);
      ("petersen", Generators.petersen ());
      ("empty", Graph.empty 5);
    ]

let test_adaptive_transcript_shape () =
  let g = Generators.grid 4 4 in
  let _, t = run_adaptive g in
  Alcotest.(check int) "two rounds" 2 t.Core.Bcc.rounds;
  (* Round 1 is one degree (log n bits); round 2 is the Algorithm 3
     message at the inferred k-hat. *)
  Alcotest.(check int) "round 1 is a degree" (Core.Bounds.id_bits 16)
    t.Core.Bcc.per_round_max_bits.(0);
  Alcotest.(check bool) "round 2 carries power sums" true
    (t.Core.Bcc.per_round_max_bits.(1) > t.Core.Bcc.per_round_max_bits.(0));
  Alcotest.(check int) "one broadcast" 1 (Array.length t.Core.Bcc.broadcast_bits);
  Alcotest.(check bool) "broadcast carries k-hat" true (t.Core.Bcc.broadcast_bits.(0) > 0);
  Alcotest.(check int) "unbounded budget" max_int t.Core.Bcc.bits_limit;
  Alcotest.(check int) "total sums the rounds"
    (t.Core.Bcc.per_round_total_bits.(0) + t.Core.Bcc.per_round_total_bits.(1))
    t.Core.Bcc.total_bits

let test_adaptive_bits_track_sparseness () =
  (* A path and a clique of the same order: the adaptive protocol spends
     far fewer round-2 bits on the path. *)
  let _, tp = run_adaptive (Generators.path 12) in
  let _, tc = run_adaptive (Generators.complete 12) in
  Alcotest.(check bool) "path cheaper than clique" true
    (tp.Core.Bcc.max_bits < tc.Core.Bcc.max_bits)

let test_of_one_round_embedding () =
  let lifted = Core.Bcc.of_one_round Core.Forest_protocol.reconstruct in
  let g = Generators.random_tree (Random.State.make [| 2 |]) 15 in
  let out, t = Core.Bcc.run lifted g in
  Alcotest.check graph_opt "same output" (Some g) out;
  Alcotest.(check int) "single round" 1 t.Core.Bcc.rounds;
  Alcotest.(check int) "no broadcast" 0 (Array.length t.Core.Bcc.broadcast_bits);
  Alcotest.(check int) "same message size" (Core.Forest_protocol.message_bits 15)
    t.Core.Bcc.max_bits

(* ---------- deterministic connectivity ---------- *)

let max_degree_of g =
  List.fold_left (fun acc v -> max acc (Graph.degree g v)) 0 (Graph.vertices g)

let decide_conn ?(bandwidth = 2) g =
  let rounds = Core.Bcc_connectivity.rounds_for ~bandwidth ~max_degree:(max_degree_of g) in
  Core.Bcc.run (Core.Bcc_connectivity.protocol ~rounds ~bandwidth ()) g

let two_triangles = Graph.of_edges 6 [ (1, 2); (2, 3); (1, 3); (4, 5); (5, 6); (4, 6) ]

let test_connectivity_vs_oracle () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun bandwidth ->
          let out, t = decide_conn ~bandwidth g in
          Alcotest.check bool_opt
            (Printf.sprintf "%s @ bandwidth %d" name bandwidth)
            (Some (Connectivity.is_connected g))
            out;
          (* The enforced cap is the advertised O(log n) budget. *)
          Alcotest.(check int) "budget is c * id_bits"
            (bandwidth * Core.Bounds.id_bits (Graph.order g))
            t.Core.Bcc.bits_limit;
          Alcotest.(check bool) "within budget" true (t.Core.Bcc.max_bits <= t.Core.Bcc.bits_limit))
        [ 1; 3 ])
    [
      ("path", Generators.path 12);
      ("cycle", Generators.cycle 9);
      ("K8", Generators.complete 8);
      ("petersen", Generators.petersen ());
      ("grid", Generators.grid 4 4);
      ("singleton", Graph.empty 1);
      ("edgeless", Graph.empty 5);
      ("two triangles", two_triangles);
      ("gnp", Generators.gnp (Random.State.make [| 3 |]) 24 0.12);
    ]

let test_connectivity_insufficient_rounds () =
  (* Two triangles, one id per round: after round 2 each node has
     announced one of its two neighbours — no spanning knowledge, no
     one-component certificate -> undetermined, never a wrong answer. *)
  let out, _ = Core.Bcc.run (Core.Bcc_connectivity.protocol ~rounds:2 ~bandwidth:1 ()) two_triangles in
  Alcotest.check bool_opt "undetermined" None out;
  (* One more batch closes the adjacency lists: exact "disconnected". *)
  let out, _ = Core.Bcc.run (Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:1 ()) two_triangles in
  Alcotest.check bool_opt "decided" (Some false) out

let test_connectivity_early_stop () =
  (* A connected family resolves at round 2 (smallest-first batches span
     every implicit family); the round-3 uplink then costs nothing. *)
  let out, t =
    Core.Bcc.run (Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:1 ()) (Generators.cycle 32)
  in
  Alcotest.check bool_opt "connected" (Some true) out;
  Alcotest.(check bool) "round 2 pays" true (t.Core.Bcc.per_round_total_bits.(1) > 0);
  Alcotest.(check int) "round 3 is free" 0 t.Core.Bcc.per_round_total_bits.(2);
  Alcotest.(check int) "resolved flag is one bit" 1 t.Core.Bcc.broadcast_bits.(1)

let seven_families n =
  [ "path"; "cycle"; "star"; "grid"; "hypercube"; "regular:4:7"; "degenerate:3:5" ]
  |> List.map (fun spec -> Implicit.parse_family spec n)

let source_max_degree src =
  let n = Graph_source.order src in
  let m = ref 0 in
  for v = 1 to n do
    m := max !m (Graph_source.degree src v)
  done;
  !m

let decide_source ?(bandwidth = 2) ?rounds src =
  let rounds =
    match rounds with
    | Some r -> r
    | None -> Core.Bcc_connectivity.rounds_for ~bandwidth ~max_degree:(source_max_degree src)
  in
  fst (Core.Bcc.run_source (Core.Bcc_connectivity.protocol ~rounds ~bandwidth ()) src)

let test_connectivity_implicit_families_oracle () =
  (* Materializable sizes: every family against the BFS oracle. *)
  List.iter
    (fun fam ->
      let src = Graph_source.of_implicit fam in
      let expected = Connectivity.is_connected (Implicit.materialize fam) in
      Alcotest.check bool_opt (Implicit.label fam) (Some expected) (decide_source src))
    (seven_families 600)

let test_connectivity_large_implicit () =
  (* n = 10^5: beyond materialization, against closed-form truths.  The
     connected families resolve at round 2 — O(1) rounds at O(log n)
     bits — independent of n. *)
  List.iter
    (fun (spec, n) ->
      let src = Graph_source.parse (Printf.sprintf "implicit:%s" spec) in
      Alcotest.check bool_opt spec (Some true) (decide_source ~bandwidth:1 ~rounds:2 src);
      ignore n)
    [
      ("path:100000", 100000);
      ("cycle:100000", 100000);
      ("star:100000", 100000);
      ("grid:250x400", 100000);
      ("hypercube:16", 65536);
    ];
  (* Hashed circulant: the protocol must agree with the gcd oracle. *)
  let fam = Implicit.parse "regular:100000:4:7" in
  let src = Graph_source.of_implicit fam in
  let offsets = List.map (fun nb -> nb - 1) (Implicit.neighbors fam 1) in
  let expected = Core.Bcc_connectivity.circulant_connected ~n:100000 offsets in
  Alcotest.check bool_opt "regular:100000:4:7" (Some expected) (decide_source ~bandwidth:2 src);
  (* Planted degeneracy: no closed form — two bandwidths must agree, and
     the round budget guarantees a decision either way. *)
  let src = Graph_source.parse "implicit:degenerate:100000:3:5" in
  let a = decide_source ~bandwidth:4 src in
  let b = decide_source ~bandwidth:8 src in
  Alcotest.(check bool) "degenerate decided" true (a <> None);
  Alcotest.check bool_opt "bandwidths agree" a b

let test_circulant_oracle () =
  Alcotest.(check bool) "gcd 1" true (Core.Bcc_connectivity.circulant_connected ~n:10 [ 3 ]);
  Alcotest.(check bool) "gcd 2" false (Core.Bcc_connectivity.circulant_connected ~n:10 [ 2; 4 ]);
  Alcotest.(check bool) "no offsets" false (Core.Bcc_connectivity.circulant_connected ~n:5 []);
  Alcotest.(check bool) "trivial" true (Core.Bcc_connectivity.circulant_connected ~n:1 [])

(* ---------- budget enforcement ---------- *)

(* A protocol that lies about its budget: claims one id per round but
   ships two.  The engine must refuse at send time, deterministically on
   the smallest id. *)
let chatty () : unit Core.Bcc.t =
  {
    Core.Bcc.name = "bcc-test-chatty";
    budget = { Core.Bcc.rounds = 1; bits_per_round = Core.Bcc.log_budget ~c:1 };
    init = Core.Bcc.make_state;
    send =
      (fun ~round:_ s ->
        let v = Core.Bcc.state_view s in
        let w = Bit_writer.create () in
        Codes.write_fixed w ~width:(2 * Core.Bounds.id_bits (Core.View.n v)) 0;
        (Core.Message.of_writer w, s));
    receive = (fun ~round:_ ~broadcast:_ s -> s);
    referee =
      Core.Bcc.Referee
        {
          r_init = (fun ~n:_ -> ());
          r_absorb = (fun ~n:_ ~round:_ () ~id:_ _ -> ());
          r_broadcast = (fun ~n:_ ~round:_ () -> ((), Core.Message.empty));
          r_finish = (fun ~n:_ () -> ());
        };
  }

(* A referee that breaks the cap with its own broadcast (id 0). *)
let shouty () : unit Core.Bcc.t =
  {
    Core.Bcc.name = "bcc-test-shouty";
    budget = { Core.Bcc.rounds = 2; bits_per_round = Core.Bcc.log_budget ~c:1 };
    init = Core.Bcc.make_state;
    send = (fun ~round:_ s -> (Core.Message.empty, s));
    receive = (fun ~round:_ ~broadcast:_ s -> s);
    referee =
      Core.Bcc.Referee
        {
          r_init = (fun ~n:_ -> ());
          r_absorb = (fun ~n:_ ~round:_ () ~id:_ _ -> ());
          r_broadcast =
            (fun ~n ~round:_ () ->
              let w = Bit_writer.create () in
              Codes.write_fixed w ~width:(2 * Core.Bounds.id_bits n) 0;
              ((), Core.Message.of_writer w));
          r_finish = (fun ~n:_ () -> ());
        };
  }

let test_budget_violation () =
  let g = Generators.cycle 16 in
  (match Core.Bcc.run (chatty ()) g with
  | _ -> Alcotest.fail "over-budget send must raise"
  | exception Core.Bcc.Budget_exceeded { round; id; bits; limit } ->
    Alcotest.(check int) "round" 1 round;
    Alcotest.(check int) "first offender" 1 id;
    Alcotest.(check int) "bits" (2 * Core.Bounds.id_bits 16) bits;
    Alcotest.(check int) "limit" (Core.Bounds.id_bits 16) limit);
  match Core.Bcc.run (shouty ()) g with
  | _ -> Alcotest.fail "over-budget broadcast must raise"
  | exception Core.Bcc.Budget_exceeded { id; _ } ->
    Alcotest.(check int) "referee is id 0" 0 id

(* ---------- budget validation ---------- *)

(* A protocol that sends nothing, parameterized by its budget: the only
   thing the entry points can object to is the contract itself. *)
let quiet_with budget : unit Core.Bcc.t =
  {
    Core.Bcc.name = "bcc-test-quiet";
    budget;
    init = Core.Bcc.make_state;
    send = (fun ~round:_ s -> (Core.Message.empty, s));
    receive = (fun ~round:_ ~broadcast:_ s -> s);
    referee =
      Core.Bcc.Referee
        {
          r_init = (fun ~n:_ -> ());
          r_absorb = (fun ~n:_ ~round:_ () ~id:_ _ -> ());
          r_broadcast = (fun ~n:_ ~round:_ () -> ((), Core.Message.empty));
          r_finish = (fun ~n:_ () -> ());
        };
  }

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_invalid name ~naming f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument msg ->
    if not (contains_sub msg naming) then
      Alcotest.failf "%s: Invalid_argument %S does not name %S" name msg naming
  | exception Core.Bcc.Budget_exceeded _ ->
    Alcotest.failf "%s: surfaced as Budget_exceeded, wanted Invalid_argument" name

let test_budget_constructor () =
  check_invalid "rounds = 0" ~naming:"rounds" (fun () ->
      Core.Bcc.budget ~rounds:0 ~bits_per_round:Core.Bcc.unbounded);
  check_invalid "rounds = -3" ~naming:"rounds" (fun () ->
      Core.Bcc.budget ~rounds:(-3) ~bits_per_round:Core.Bcc.unbounded);
  let b = Core.Bcc.budget ~rounds:2 ~bits_per_round:(Core.Bcc.log_budget ~c:1) in
  Alcotest.(check int) "rounds kept" 2 b.Core.Bcc.rounds;
  Alcotest.(check int) "cap kept" (Core.Bounds.id_bits 16) (b.Core.Bcc.bits_per_round 16)

let test_budget_validated_at_entry () =
  let g = Generators.cycle 8 in
  (* Hand-built records bypass the constructor; the entry points still
     name the field rather than raising a spurious Budget_exceeded. *)
  check_invalid "run rounds = 0" ~naming:"rounds" (fun () ->
      Core.Bcc.run (quiet_with { Core.Bcc.rounds = 0; bits_per_round = Core.Bcc.unbounded }) g);
  check_invalid "run cap = 0" ~naming:"bits_per_round" (fun () ->
      Core.Bcc.run (quiet_with { Core.Bcc.rounds = 1; bits_per_round = (fun _ -> 0) }) g);
  check_invalid "run cap < 0" ~naming:"bits_per_round" (fun () ->
      Core.Bcc.run (quiet_with { Core.Bcc.rounds = 1; bits_per_round = (fun _ -> -7) }) g);
  check_invalid "run_faulty rounds = 0" ~naming:"rounds" (fun () ->
      Core.Bcc.run_faulty (quiet_with { Core.Bcc.rounds = 0; bits_per_round = Core.Bcc.unbounded }) g);
  check_invalid "run_faulty cap = 0" ~naming:"bits_per_round" (fun () ->
      Core.Bcc.run_faulty (quiet_with { Core.Bcc.rounds = 1; bits_per_round = (fun _ -> 0) }) g);
  (* A valid contract through the same quiet protocol still runs. *)
  let _, t =
    Core.Bcc.run (quiet_with (Core.Bcc.budget ~rounds:1 ~bits_per_round:(Core.Bcc.log_budget ~c:1))) g
  in
  Alcotest.(check int) "valid budget runs" 1 t.Core.Bcc.rounds

(* ---------- transcript determinism ---------- *)

let transcript_eq = Alcotest.testable (fun fmt (_ : Core.Bcc.transcript) -> Format.fprintf fmt "<transcript>") ( = )

let test_transcript_equality () =
  (* Same labelled graph through all three backends, every chunk size, a
     wider domain pool: bit-identical transcript, same output. *)
  let fam = Implicit.parse "cycle:96" in
  let sources =
    [
      ("implicit", Graph_source.of_implicit fam);
      ("materialized", Graph_source.of_graph (Implicit.materialize fam));
      ("csr", Graph_source.of_csr (Graph_source.to_csr (Graph_source.of_implicit fam)));
    ]
  in
  let p = Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:1 () in
  let base_out, base_t = Core.Bcc.run_source p (List.assoc "implicit" sources) in
  Alcotest.check bool_opt "baseline decides" (Some true) base_out;
  List.iter
    (fun (backend, src) ->
      List.iter
        (fun chunk ->
          List.iter
            (fun domains ->
              let out, t = Core.Bcc.run_source ~domains ~chunk p src in
              let tag = Printf.sprintf "%s chunk=%d domains=%d" backend chunk domains in
              Alcotest.check bool_opt tag base_out out;
              Alcotest.check transcript_eq tag base_t t)
            [ 1; 4 ])
        [ 1; 7; 64; 96 ])
    sources;
  (* Same discipline for the adaptive protocol. *)
  let q = Core.Bcc.Adaptive_degeneracy.protocol () in
  let out0, t0 = Core.Bcc.run_source q (List.assoc "implicit" sources) in
  List.iter
    (fun (backend, src) ->
      let out, t = Core.Bcc.run_source ~domains:4 ~chunk:5 q src in
      Alcotest.check graph_opt backend out0 out;
      Alcotest.check transcript_eq backend t0 t)
    sources

(* ---------- faults and hardening ---------- *)

let test_empty_plan_bit_identical () =
  let g = Generators.petersen () in
  let p = Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:1 () in
  let out, t = Core.Bcc.run p g in
  let out', t' = Core.Bcc.run_faulty p g in
  Alcotest.check bool_opt "same output" out out';
  Alcotest.check transcript_eq "same transcript" t t';
  Alcotest.(check (list int)) "no faults" [] t'.Core.Bcc.faulted_ids

let test_crash_degrades_connected () =
  (* Crash a middle node of a path: its edges are still announced by the
     neighbours, so the spanning certificate survives -> Degraded. *)
  let g = Generators.path 10 in
  let p = Core.Bcc_connectivity.hardened ~rounds:11 ~bandwidth:1 () in
  let plan = Core.Faults.of_list [ (3, Core.Faults.Crash) ] in
  let v, t = Core.Bcc.run_faulty ~faults:plan p g in
  (match v with
  | Core.Verdict.Degraded (Some true, report) ->
    Alcotest.(check (list int)) "missing" [ 3 ] report.Core.Verdict.missing
  | _ -> Alcotest.fail "expected Degraded (Some true, _)");
  Alcotest.(check (list int)) "faulted ids recorded" [ 3 ] t.Core.Bcc.faulted_ids

let test_crash_never_asserts_disconnected () =
  (* On a disconnected graph a crash kills the full-knowledge check, so
     the salvaged answer is withheld. *)
  let p = Core.Bcc_connectivity.hardened ~rounds:3 ~bandwidth:1 () in
  let plan = Core.Faults.of_list [ (1, Core.Faults.Crash) ] in
  let v, _ = Core.Bcc.run_faulty ~faults:plan p two_triangles in
  match v with
  | Core.Verdict.Inconclusive _ -> ()
  | _ -> Alcotest.fail "expected Inconclusive"

let test_clean_channel_decides () =
  let p = Core.Bcc_connectivity.hardened ~rounds:3 ~bandwidth:1 () in
  match Core.Bcc.run_faulty p two_triangles with
  | Core.Verdict.Decided (Some false), _ -> ()
  | _ -> Alcotest.fail "clean channel must yield Decided (Some false)"

let prop_no_wrong_verdict_under_faults =
  QCheck2.Test.make ~name:"hardened connectivity never lies under crash/truncate plans" ~count:80
    QCheck2.Gen.(triple (int_range 2 16) (int_range 0 9) int)
    (fun (n, p10, seed) ->
      let rng = Random.State.make [| seed; n; p10 |] in
      let g = Generators.gnp rng n (float_of_int p10 /. 10.0) in
      let bandwidth = 2 in
      let rounds = Core.Bcc_connectivity.rounds_for ~bandwidth ~max_degree:(max_degree_of g) in
      let plan = Core.Faults.random ~seed ~n ~crash:0.3 ~truncate:0.2 () in
      let p = Core.Bcc_connectivity.hardened ~rounds ~bandwidth () in
      let v, _ = Core.Bcc.run_faulty ~faults:plan p g in
      match v with
      | Core.Verdict.Decided (Some b) | Core.Verdict.Degraded (Some b, _) ->
        b = Connectivity.is_connected g
      | Core.Verdict.Decided None | Core.Verdict.Degraded (None, _) | Core.Verdict.Inconclusive _ ->
        true)

(* ---------- observability: spans, [round=] audit, metrics ---------- *)

let test_trace_round_spans () =
  let sink, drain = Core.Trace.memory () in
  let p = Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:1 () in
  let _ = Core.Bcc.run ~trace:sink p (Generators.cycle 16) in
  let events = drain () in
  Alcotest.(check bool) "balanced spans" true (Core.Trace.balanced_spans events);
  let round_spans =
    List.filter
      (function
        | Core.Trace.Span_begin { label; _ } ->
          String.length label > 17 && String.sub label 0 17 = "bcc-connectivity-"
          && String.length label > 18
        | _ -> false)
      events
  in
  (* Outer span + one span per round carry the round decoration. *)
  Alcotest.(check bool) "per-round spans present" true
    (List.exists
       (function
         | Core.Trace.Span_begin { label = "bcc-connectivity-1[round=2]"; _ } -> true
         | _ -> false)
       round_spans);
  Alcotest.(check int) "two broadcasts" 2
    (List.length
       (List.filter (function Core.Trace.Referee_broadcast _ -> true | _ -> false) events))

let test_round_label_audit () =
  (* The [round=] decoration peels like [src=]: per-round spans audit
     under the protocol's per-round budget. *)
  (match Core.Bound_audit.classify_label "bcc-connectivity-2[round=1]" with
  | Core.Bound_audit.Budgeted { Core.Bound_audit.b_shape = Core.Bound_audit.K_log_n 2; _ } -> ()
  | _ -> Alcotest.fail "expected a K_log_n 2 budget");
  let obs ~bits = [ { Core.Bound_audit.o_n = 512; o_max_bits = bits } ] in
  let fit = 2 * Core.Bounds.id_bits 512 in
  (match Core.Bound_audit.audit_label "bcc-connectivity-2[round=3][src=implicit:cycle]" (obs ~bits:fit) with
  | Some v -> Alcotest.(check bool) "at the cap passes" true v.Core.Bound_audit.v_passed
  | None -> Alcotest.fail "expected a budget");
  match Core.Bound_audit.audit_label "bcc-connectivity-2[round=3]" (obs ~bits:(fit + 1)) with
  | Some v -> Alcotest.(check bool) "over the cap fails" false v.Core.Bound_audit.v_passed
  | None -> Alcotest.fail "expected a budget"

let test_report_roundtrip () =
  (* A live BCC run rendered through the report's own line parser: every
     event ingests, the [round=] labels land in the audit table, and the
     within-budget run leaves no violations. *)
  let r = Core.Report.create () in
  let p = Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:2 () in
  let out, _ = Core.Bcc.run ~trace:(Core.Report.sink r) p (Generators.cycle 48) in
  Alcotest.check bool_opt "decided" (Some true) out;
  Alcotest.(check bool) "events ingested" true (Core.Report.events r > 0);
  let labels = List.map (fun v -> v.Core.Bound_audit.v_label) (Core.Report.verdicts r) in
  Alcotest.(check bool) "round label audited" true
    (List.mem "bcc-connectivity-2[round=2]" labels);
  Alcotest.(check int) "no violations" 0 (List.length (Core.Report.violations r))

let test_metrics_rounds_counter () =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  let p = Core.Bcc_connectivity.protocol ~rounds:3 ~bandwidth:1 () in
  let _ = Core.Bcc.run ~metrics:m p (Generators.cycle 16) in
  let _ = Core.Bcc.run ~metrics:m p (Generators.path 8) in
  Alcotest.(check int) "refnet_bcc_rounds_total" 6
    (Core.Metrics.Counter.value (Core.Metrics.Counter.counter m "refnet_bcc_rounds_total"))

(* ---------- properties (ported from the Multi_round suite) ---------- *)

let prop_adaptive_on_gnp =
  QCheck2.Test.make ~name:"adaptive 2-round reconstructs arbitrary G(n,p)" ~count:60
    QCheck2.Gen.(triple (int_range 1 20) (int_range 1 9) int)
    (fun (n, p10, seed) ->
      let rng = Random.State.make [| seed; n; p10 |] in
      let g = Generators.gnp rng n (float_of_int p10 /. 10.0) in
      fst (run_adaptive g) = Some g)

let prop_khat_scales_budget =
  QCheck2.Test.make ~name:"round-2 bits follow the k-hat budget formula" ~count:40
    QCheck2.Gen.(pair (int_range 2 20) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.3 in
      let degrees = Array.of_list (List.map (Graph.degree g) (Graph.vertices g)) in
      let k = max 1 (Core.Bcc.Adaptive_degeneracy.degree_bound degrees) in
      let _, t = run_adaptive g in
      t.Core.Bcc.per_round_max_bits.(1) = Core.Degeneracy_protocol.message_bits ~k n)

let prop_connectivity_on_gnp =
  QCheck2.Test.make ~name:"connectivity matches the oracle on G(n,p)" ~count:80
    QCheck2.Gen.(triple (int_range 1 24) (int_range 0 9) int)
    (fun (n, p10, seed) ->
      let rng = Random.State.make [| seed; n; p10 |] in
      let g = Generators.gnp rng n (float_of_int p10 /. 10.0) in
      fst (decide_conn ~bandwidth:2 g) = Some (Connectivity.is_connected g))

let () =
  Alcotest.run "bcc"
    [
      ( "degree bound",
        [
          Alcotest.test_case "values" `Quick test_degree_bound_values;
          Alcotest.test_case "dominates degeneracy" `Quick test_degree_bound_dominates_degeneracy;
        ] );
      ( "adaptive protocol",
        [
          Alcotest.test_case "reconstructs without knowing k" `Quick
            test_adaptive_reconstructs_without_k;
          Alcotest.test_case "transcript shape" `Quick test_adaptive_transcript_shape;
          Alcotest.test_case "bits track sparseness" `Quick test_adaptive_bits_track_sparseness;
          Alcotest.test_case "one-round embedding" `Quick test_of_one_round_embedding;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "matches oracle" `Quick test_connectivity_vs_oracle;
          Alcotest.test_case "insufficient rounds" `Quick test_connectivity_insufficient_rounds;
          Alcotest.test_case "early stop" `Quick test_connectivity_early_stop;
          Alcotest.test_case "implicit families vs oracle" `Quick
            test_connectivity_implicit_families_oracle;
          Alcotest.test_case "n = 10^5 implicit" `Slow test_connectivity_large_implicit;
          Alcotest.test_case "circulant closed form" `Quick test_circulant_oracle;
        ] );
      ( "engine",
        [
          Alcotest.test_case "budget violation" `Quick test_budget_violation;
          Alcotest.test_case "budget constructor validates" `Quick test_budget_constructor;
          Alcotest.test_case "budget validated at entry" `Quick test_budget_validated_at_entry;
          Alcotest.test_case "transcript equality" `Quick test_transcript_equality;
        ] );
      ( "faults",
        [
          Alcotest.test_case "empty plan bit-identical" `Quick test_empty_plan_bit_identical;
          Alcotest.test_case "crash degrades connected" `Quick test_crash_degrades_connected;
          Alcotest.test_case "crash never asserts disconnected" `Quick
            test_crash_never_asserts_disconnected;
          Alcotest.test_case "clean channel decides" `Quick test_clean_channel_decides;
        ] );
      ( "observability",
        [
          Alcotest.test_case "round spans" `Quick test_trace_round_spans;
          Alcotest.test_case "[round=] audit" `Quick test_round_label_audit;
          Alcotest.test_case "report round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "rounds counter" `Quick test_metrics_rounds_counter;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_adaptive_on_gnp;
            prop_khat_scales_budget;
            prop_connectivity_on_gnp;
            prop_no_wrong_verdict_under_faults;
          ] );
    ]
