(* Fault-injection layer and detect-or-degrade verdicts.

   The contract under test is the one the hardened protocols advertise:
   under ANY fault plan they never return a wrong [Decided] — corruption
   is either detected (Degraded/Inconclusive) or absent (Decided equals
   the fault-free answer) — and an empty plan leaves [run_faulty]
   bit-identical to [run]. *)

open Refnet_graph

let rates i =
  (* Cycle through fault mixes so every fault kind gets exercised. *)
  match i mod 5 with
  | 0 -> (0.3, 0., 0., 0., 0.)
  | 1 -> (0., 0.3, 0.2, 0., 0.)
  | 2 -> (0., 0., 0.4, 0., 0.)
  | 3 -> (0., 0., 0., 0.4, 0.2)
  | _ -> (0.1, 0.1, 0.1, 0.1, 0.1)

let plan_for ~seed ~n i =
  let crash, truncate, flip, duplicate, spoof = rates i in
  Core.Faults.random ~seed ~n ~crash ~truncate ~flip ~flip_bits:2 ~duplicate ~spoof ()

let graph_opt_equal a b =
  match (a, b) with
  | Some g, Some h -> Graph.equal g h
  | None, None -> true
  | _ -> false

(* ---------- plan determinism and structure ---------- *)

let test_plan_reproducible () =
  for i = 0 to 20 do
    let p1 = plan_for ~seed:(100 + i) ~n:40 i in
    let p2 = plan_for ~seed:(100 + i) ~n:40 i in
    Alcotest.(check bool) "same seed, same plan" true
      (Core.Faults.to_list p1 = Core.Faults.to_list p2)
  done

let test_plan_of_list_validation () =
  let bad entries =
    match Core.Faults.of_list entries with
    | (_ : Core.Faults.plan) -> Alcotest.fail "of_list accepted an invalid plan"
    | exception Invalid_argument _ -> ()
  in
  bad [ (0, Core.Faults.Crash) ];
  bad [ (3, Core.Faults.Crash); (3, Core.Faults.Duplicate) ];
  bad [ (1, Core.Faults.Truncate (-1)) ];
  bad [ (1, Core.Faults.Spoof 0) ];
  let p = Core.Faults.of_list [ (5, Core.Faults.Crash); (2, Core.Faults.Duplicate) ] in
  Alcotest.(check (list int)) "ids sorted" [ 2; 5 ] (Core.Faults.ids p)

let test_apply_scope () =
  (* Entries beyond the message vector are ignored; crash drops, spoof
     re-addresses, duplicate delivers twice. *)
  let msgs = Array.init 3 (fun i -> Core.Message.seal ~n:3 ~id:(i + 1) Core.Message.empty) in
  let plan =
    Core.Faults.of_list
      [ (1, Core.Faults.Crash); (2, Core.Faults.Spoof 3); (9, Core.Faults.Crash) ]
  in
  let deliveries, injected = Core.Faults.apply plan msgs in
  Alcotest.(check (list int)) "in-scope injections" [ 1; 2 ] (List.map fst injected);
  Alcotest.(check (list int)) "delivery ids" [ 3; 3 ] (List.map fst deliveries)

(* ---------- seals ---------- *)

let test_seal_detects_any_single_flip () =
  let payload =
    let open Refnet_bits in
    let w = Bit_writer.create () in
    Codes.write_fixed w ~width:20 0xabcde;
    Bit_writer.contents w
  in
  let sealed = Core.Message.seal ~n:16 ~id:7 payload in
  (match Core.Message.unseal ~n:16 ~id:7 sealed with
  | Some p -> Alcotest.(check bool) "roundtrip" true (Core.Message.equal p payload)
  | None -> Alcotest.fail "unseal rejected an intact seal");
  (match Core.Message.unseal ~n:16 ~id:8 sealed with
  | None -> ()
  | Some _ -> Alcotest.fail "unseal accepted a wrong sender id");
  let open Refnet_bits in
  for i = 0 to Bitvec.length sealed - 1 do
    let tampered = Bitvec.copy sealed in
    Bitvec.assign tampered i (not (Bitvec.get tampered i));
    match Core.Message.unseal ~n:16 ~id:7 tampered with
    | None -> ()
    | Some _ -> Alcotest.failf "single flip at bit %d went undetected" i
  done

(* ---------- empty plan == run, bit for bit ---------- *)

let test_empty_plan_bit_identical () =
  let g = Generators.random_tree (Random.State.make [| 31 |]) 25 in
  List.iter
    (fun domains ->
      let sink_a, events_a = Core.Trace.memory () in
      let sink_b, events_b = Core.Trace.memory () in
      let out_a, t_a =
        Core.Simulator.run ~domains ~trace:sink_a Core.Forest_protocol.reconstruct g
      in
      let out_b, t_b =
        Core.Simulator.run_faulty ~faults:Core.Faults.empty ~domains ~trace:sink_b
          Core.Forest_protocol.reconstruct g
      in
      Alcotest.(check bool) "same output" true (graph_opt_equal out_a out_b);
      Alcotest.(check bool) "same transcript" true (t_a = t_b);
      Alcotest.(check bool) "no faulted ids" true (t_b.Core.Simulator.faulted_ids = []);
      Alcotest.(check bool) "same event stream" true (events_a () = events_b ()))
    [ 1; 2 ]

let test_empty_plan_coalition_identical () =
  let g = Generators.gnp (Random.State.make [| 5 |]) 20 0.2 in
  let parts = Core.Coalition.partition_by_ranges ~n:20 ~parts:4 in
  let sink_a, events_a = Core.Trace.memory () in
  let sink_b, events_b = Core.Trace.memory () in
  let out_a, t_a = Core.Coalition.run ~trace:sink_a Core.Connectivity_parts.decide g ~parts in
  let out_b, t_b =
    Core.Coalition.run_faulty ~faults:Core.Faults.empty ~trace:sink_b
      Core.Connectivity_parts.decide g ~parts
  in
  Alcotest.(check bool) "same output" true (out_a = out_b);
  Alcotest.(check bool) "same transcript" true (t_a = t_b);
  Alcotest.(check bool) "same event stream" true (events_a () = events_b ())

(* ---------- detect or degrade, never lie ---------- *)

(* Generic property loop for reconstruction-style hardened protocols:
   Decided must equal the fault-free answer; Degraded must only claim
   true edges; nothing may escape as an exception. *)
let reconstruction_property name plain hardened make_graph =
  for trial = 1 to 40 do
    let g = make_graph trial in
    let n = Graph.order g in
    let clean, _ = Core.Simulator.run plain g in
    let faults = plan_for ~seed:trial ~n trial in
    match Core.Simulator.run_faulty ~faults hardened g with
    | exception e ->
      Alcotest.failf "%s trial %d: run_faulty raised %s" name trial (Printexc.to_string e)
    | verdict, t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s trial %d: faulted_ids matches plan" name trial)
        true
        (t.Core.Simulator.faulted_ids
        = List.map fst
            (List.filter (fun (id, _) -> id <= n) (Core.Faults.to_list faults)));
      (match verdict with
      | Core.Verdict.Decided out ->
        if not (graph_opt_equal out clean) then
          Alcotest.failf "%s trial %d: wrong Decided under plan %s" name trial
            (Format.asprintf "%a" Core.Faults.pp faults)
      | Core.Verdict.Degraded (Some h, report) ->
        Graph.iter_edges h (fun u v ->
            if not (Graph.has_edge g u v) then
              Alcotest.failf "%s trial %d: degraded output claims non-edge {%d,%d}" name trial
                u v);
        List.iter
          (fun id ->
            if id < 1 || id > n then
              Alcotest.failf "%s trial %d: undetermined id %d out of range" name trial id)
          report.Core.Verdict.undetermined
      | Core.Verdict.Degraded (None, _) ->
        Alcotest.failf "%s trial %d: Degraded None (reject needs authentic evidence)" name
          trial
      | Core.Verdict.Inconclusive _ -> ())
  done

let test_forest_detect_or_degrade () =
  reconstruction_property "forest" Core.Forest_protocol.reconstruct
    Core.Forest_protocol.hardened (fun trial ->
      Generators.random_forest
        (Random.State.make [| trial |])
        ((trial mod 25) + 4)
        ~trees:(max 1 (trial mod 4)))

let test_degeneracy_detect_or_degrade () =
  reconstruction_property "degeneracy-2"
    (Core.Degeneracy_protocol.reconstruct ~k:2 ())
    (Core.Degeneracy_protocol.hardened ~k:2 ())
    (fun trial ->
      Generators.random_k_degenerate (Random.State.make [| trial |]) ((trial mod 15) + 3) ~k:2)

let test_bounded_detect_or_degrade () =
  (* Overflow inputs are legal here: an authentic overflow row keeps the
     verdict Decided None even under faults, which the property accepts
     because the clean answer is None too. *)
  reconstruction_property "bounded-3"
    (Core.Bounded_degree.reconstruct ~max_degree:3)
    (Core.Bounded_degree.hardened ~max_degree:3)
    (fun trial -> Generators.gnp (Random.State.make [| trial |]) ((trial mod 12) + 3) 0.3)

(* ---------- crash-only forest plans: exact partial semantics ---------- *)

let test_crash_only_forest_exact () =
  for trial = 1 to 50 do
    let n = (trial mod 30) + 5 in
    let g = Generators.random_forest (Random.State.make [| 7 * trial |]) n ~trees:2 in
    let faults = Core.Faults.random ~seed:trial ~n ~crash:0.25 () in
    let verdict, _ = Core.Simulator.run_faulty ~faults Core.Forest_protocol.hardened g in
    match verdict with
    | Core.Verdict.Decided out ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d: Decided only on empty plan" trial)
        true
        (Core.Faults.is_empty faults && graph_opt_equal out (Some g))
    | Core.Verdict.Inconclusive reason ->
      Alcotest.failf "trial %d: crash-only plan cannot be inconclusive (%s)" trial reason
    | Core.Verdict.Degraded (None, _) -> Alcotest.failf "trial %d: Degraded None" trial
    | Core.Verdict.Degraded (Some h, report) ->
      let determined = Array.make n true in
      List.iter
        (fun id -> determined.(id - 1) <- false)
        report.Core.Verdict.undetermined;
      (* The partial graph is exactly the input edges incident to a
         determined node: every authentic row is true, and the prune
         resolves a node only once all its edges are accounted for. *)
      for u = 1 to n do
        for v = u + 1 to n do
          let expected =
            Graph.has_edge g u v && (determined.(u - 1) || determined.(v - 1))
          in
          if Graph.has_edge h u v <> expected then
            Alcotest.failf "trial %d: edge {%d,%d} present=%b expected=%b" trial u v
              (Graph.has_edge h u v) expected
        done
      done
  done

(* ---------- connectivity: one-sided verdicts ---------- *)

let test_coalition_crash_verdicts () =
  for trial = 1 to 40 do
    let n = (trial mod 20) + 4 in
    let connected = trial mod 2 = 0 in
    let g =
      if connected then Generators.random_tree (Random.State.make [| trial |]) n
      else Generators.random_forest (Random.State.make [| trial |]) n ~trees:2
    in
    let actually_connected = Connectivity.is_connected g in
    let parts = Core.Coalition.partition_by_ranges ~n ~parts:(min 3 n) in
    let faults = Core.Faults.random ~seed:(13 * trial) ~n ~crash:0.3 () in
    let verdict, _ =
      Core.Coalition.run_faulty ~faults Core.Connectivity_parts.hardened g ~parts
    in
    match verdict with
    | Core.Verdict.Decided b ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d: Decided matches truth" trial)
        actually_connected b;
      Alcotest.(check bool)
        (Printf.sprintf "trial %d: Decided only on empty plan" trial)
        true (Core.Faults.is_empty faults)
    | Core.Verdict.Degraded (b, _) ->
      (* One-sided: surviving shares hold only true edges, so a positive
         answer is certain; a negative one must never be Degraded. *)
      Alcotest.(check bool) (Printf.sprintf "trial %d: Degraded is true" trial) true b;
      Alcotest.(check bool)
        (Printf.sprintf "trial %d: graph really is connected" trial)
        true actually_connected
    | Core.Verdict.Inconclusive _ -> ()
  done

let test_sketch_verdicts () =
  for trial = 1 to 10 do
    let n = (trial mod 8) + 4 in
    let g =
      if trial mod 2 = 0 then Generators.random_tree (Random.State.make [| trial |]) n
      else Generators.random_forest (Random.State.make [| trial |]) n ~trees:2
    in
    let hardened = Core.Sketch_connectivity.hardened ~seed:17 () in
    let plain = Core.Sketch_connectivity.protocol ~seed:17 () in
    let clean, _ = Core.Simulator.run plain g in
    let faults = Core.Faults.random ~seed:trial ~n ~flip:0.4 ~flip_bits:3 () in
    (match Core.Simulator.run_faulty ~faults hardened g with
    | Core.Verdict.Decided b, _ ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d: Decided equals plain" trial)
        clean b;
      Alcotest.(check bool)
        (Printf.sprintf "trial %d: Decided only on empty plan" trial)
        true (Core.Faults.is_empty faults)
    | Core.Verdict.Degraded _, _ ->
      Alcotest.failf "trial %d: sketches admit no sound partial verdict" trial
    | Core.Verdict.Inconclusive _, _ -> ());
    (* And with no faults the hardened wrapper is transparent. *)
    match Core.Simulator.run_faulty hardened g with
    | Core.Verdict.Decided b, _ ->
      Alcotest.(check bool) (Printf.sprintf "trial %d: clean Decided" trial) clean b
    | (Core.Verdict.Degraded _ | Core.Verdict.Inconclusive _), _ ->
      Alcotest.failf "trial %d: clean channel must be Decided" trial
  done

(* ---------- generic harden combinator ---------- *)

let test_harden_generic_wrapper () =
  (* The unsealed generic wrapper can only catch faults that break
     parsing, but it must (a) be transparent on clean runs and (b) stay
     total and fault-aware under crashes. *)
  let p = Core.Protocol.harden Core.Forest_protocol.reconstruct in
  Alcotest.(check string) "name suffix" "forest-reconstruct+hardened" p.Core.Protocol.name;
  let g = Generators.random_tree (Random.State.make [| 3 |]) 15 in
  (match Core.Simulator.run p g with
  | Core.Verdict.Decided (Some h), _ -> Alcotest.(check bool) "clean" true (Graph.equal g h)
  | _ -> Alcotest.fail "clean run must be Decided Some");
  let faults = Core.Faults.of_list [ (4, Core.Faults.Crash) ] in
  match Core.Simulator.run_faulty ~faults p g with
  | Core.Verdict.Inconclusive _, _ -> ()
  | Core.Verdict.Decided _, _ -> Alcotest.fail "crash must not stay Decided"
  | Core.Verdict.Degraded _, _ -> Alcotest.fail "default on_fault is Inconclusive"

let test_trace_fault_events () =
  let g = Generators.random_tree (Random.State.make [| 8 |]) 12 in
  let faults =
    Core.Faults.of_list [ (2, Core.Faults.Crash); (5, Core.Faults.Flip [ 3; 9 ]) ]
  in
  let sink, events = Core.Trace.memory () in
  let _ = Core.Simulator.run_faulty ~faults ~trace:sink Core.Forest_protocol.hardened g in
  let fault_events =
    List.filter_map
      (function Core.Trace.Fault_injected { id; fault } -> Some (id, fault) | _ -> None)
      (events ())
  in
  Alcotest.(check bool) "both injections traced" true
    (fault_events = Core.Faults.to_list faults);
  List.iter
    (fun ev ->
      match ev with
      | Core.Trace.Fault_injected _ ->
        let line = Core.Trace.json_of_event ev in
        Alcotest.(check bool) "json has fault tag" true
          (String.length line > 0 && String.sub line 0 17 = {|{"event":"fault",|})
      | _ -> ())
    (events ())

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "same seed reproduces" `Quick test_plan_reproducible;
          Alcotest.test_case "of_list validation" `Quick test_plan_of_list_validation;
          Alcotest.test_case "apply scope" `Quick test_apply_scope;
        ] );
      ( "seals",
        [ Alcotest.test_case "single flips detected" `Quick test_seal_detects_any_single_flip ] );
      ( "empty plan identity",
        [
          Alcotest.test_case "simulator" `Quick test_empty_plan_bit_identical;
          Alcotest.test_case "coalition" `Quick test_empty_plan_coalition_identical;
        ] );
      ( "detect or degrade",
        [
          Alcotest.test_case "forest" `Quick test_forest_detect_or_degrade;
          Alcotest.test_case "degeneracy" `Quick test_degeneracy_detect_or_degrade;
          Alcotest.test_case "bounded degree" `Quick test_bounded_detect_or_degrade;
          Alcotest.test_case "crash-only forest is exact" `Quick test_crash_only_forest_exact;
          Alcotest.test_case "coalition connectivity" `Quick test_coalition_crash_verdicts;
          Alcotest.test_case "sketch connectivity" `Quick test_sketch_verdicts;
        ] );
      ( "combinator and traces",
        [
          Alcotest.test_case "generic harden" `Quick test_harden_generic_wrapper;
          Alcotest.test_case "fault trace events" `Quick test_trace_fault_events;
        ] );
    ]
