(* The flight recorder: ring discipline, dump/decode totality, and the
   byte-determinism the refuse-with-evidence path depends on.

   The contract under test (DESIGN.md §15): recording never blocks and
   never loses silently (overwrites tick a drop counter); dumps are
   byte-deterministic for a given record order whatever the domain
   width; decode is total — any byte string, however hostile, yields
   intact records plus findings and never an exception; and open_traces
   recovers exactly the sessions that died mid-flight. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  m = 0
  ||
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let ev_begin label n = Core.Trace.Span_begin { label; n }
let ev_absorb id bits = Core.Trace.Referee_absorb { id; bits }

let ev_done label n =
  Core.Trace.Referee_done { label; n; max_bits = 7; total_bits = 7 * n }

(* ---------- ring discipline ---------- *)

let test_ring_wrap_and_drop_counter () =
  let f = Core.Flight.create ~capacity:16 () in
  Alcotest.(check int) "capacity clamps to >= 16" 16 (Core.Flight.capacity f);
  for i = 1 to 40 do
    Core.Flight.record f ~trace:(Int64.of_int i) (ev_absorb i 3)
  done;
  Alcotest.(check int) "recorded counts everything" 40 (Core.Flight.recorded f);
  Alcotest.(check int) "occupancy capped at capacity" 16 (Core.Flight.occupancy f);
  Alcotest.(check int) "overwrites counted as drops" 24 (Core.Flight.dropped f);
  let d = Core.Flight.decode (Core.Flight.dump f) in
  Alcotest.(check int) "dump holds the newest entries" 16 (List.length d.Core.Flight.d_items);
  Alcotest.(check int) "header carries recorded" 40 d.Core.Flight.d_recorded;
  Alcotest.(check int) "header carries dropped" 24 d.Core.Flight.d_dropped;
  (* oldest-first overwrite: the survivors are exactly traces 25..40 *)
  let traces = List.map (fun i -> i.Core.Flight.i_trace) d.Core.Flight.d_items in
  Alcotest.(check bool) "survivors are the newest" true
    (traces = List.init 16 (fun i -> Int64.of_int (25 + i)));
  Core.Flight.reset f;
  Alcotest.(check int) "reset clears recorded" 0 (Core.Flight.recorded f);
  Alcotest.(check int) "reset clears occupancy" 0 (Core.Flight.occupancy f)

let test_tiny_capacity_is_clamped () =
  let f = Core.Flight.create ~capacity:1 () in
  Alcotest.(check bool) "clamped up" true (Core.Flight.capacity f >= 16)

(* ---------- dump/decode round-trip ---------- *)

let test_roundtrip_events_and_notes () =
  let f = Core.Flight.create () in
  let t = 0x1122334455667788L in
  Core.Flight.record f ~trace:t (ev_begin "count" 8);
  Core.Flight.record f ~trace:t (ev_absorb 3 11);
  Core.Flight.note f ~trace:t ~code:"credit" ~detail:"window overrun";
  Core.Flight.record f ~trace:t (ev_done "count" 8);
  Core.Flight.record f ~trace:0L (ev_begin "unsessioned" 2);
  let d = Core.Flight.decode (Core.Flight.dump f) in
  Alcotest.(check (list string)) "findings empty" []
    (List.map (fun fd -> fd.Core.Flight.f_reason) d.Core.Flight.d_findings);
  let items = d.Core.Flight.d_items in
  Alcotest.(check int) "all items back" 5 (List.length items);
  let kinds = List.map (fun i -> i.Core.Flight.i_kind) items in
  Alcotest.(check (list string)) "kinds in sequence order"
    [ "span_begin"; "absorb"; "note"; "done"; "span_begin" ]
    kinds;
  (* the note round-trips as a (code, detail) pair and has no JSONL line *)
  (match List.filter (fun i -> i.Core.Flight.i_kind = "note") items with
  | [ n ] ->
    Alcotest.(check (option (pair string string))) "note payload"
      (Some ("credit", "window overrun"))
      n.Core.Flight.i_note;
    Alcotest.(check bool) "note has no report line" true (n.Core.Flight.i_line = None)
  | _ -> Alcotest.fail "exactly one note expected");
  (* every event item carries a session-tagged JSONL line Report accepts *)
  let r = Core.Report.create () in
  List.iter
    (fun i ->
      match i.Core.Flight.i_line with
      | Some line ->
        Alcotest.(check bool)
          ("line tagged with session_id: " ^ line)
          true
          (i.Core.Flight.i_trace = 0L
          || contains line (Core.Flight.hex_of_trace i.Core.Flight.i_trace));
        Core.Report.ingest_line r line
      | None -> ())
    items;
  Alcotest.(check bool) "report ingested the events" true (Core.Report.events r > 0)

(* ---------- byte determinism across domain widths ---------- *)

let selftest_dump ~domains =
  let fl = Core.Flight.create ~capacity:(1 lsl 16) () in
  let cfg =
    {
      Serve.Selftest.default_cfg with
      Serve.Selftest.sessions = 60;
      conns = 4;
      n = 8;
      protocol = "count";
      faulty = 0.25;
      seed = 11;
    }
  in
  let engine_cfg =
    { Serve.Selftest.default_engine_cfg with Serve.Engine.domains = Some domains }
  in
  let o = Serve.Selftest.run ~flight:fl ~engine_cfg cfg in
  Alcotest.(check int) ("no drops at domains=" ^ string_of_int domains) 0
    o.Serve.Selftest.o_flight_dropped;
  Core.Flight.dump fl

let test_dump_bytes_deterministic_across_widths () =
  let reference = selftest_dump ~domains:1 in
  Alcotest.(check bool) "reference dump non-trivial" true (String.length reference > 64);
  List.iter
    (fun domains ->
      let d = selftest_dump ~domains in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d dump byte-identical to domains=1" domains)
        true (String.equal reference d))
    [ 2; 4; 8 ]

(* ---------- hostile input ---------- *)

let sample_dump () =
  let f = Core.Flight.create () in
  let t = 0xdeadbeefcafeL in
  Core.Flight.record f ~trace:t (ev_begin "count" 6);
  for i = 1 to 6 do
    Core.Flight.record f ~trace:t (ev_absorb i (i * 3))
  done;
  Core.Flight.note f ~trace:t ~code:"verdict" ~detail:"decided";
  Core.Flight.record f ~trace:t (ev_done "count" 6);
  Core.Flight.dump f

let test_truncated_dump_never_raises () =
  let dump = sample_dump () in
  let full = List.length (Core.Flight.decode dump).Core.Flight.d_items in
  Alcotest.(check int) "full dump decodes everything" 9 full;
  for keep = 0 to String.length dump - 1 do
    let d = Core.Flight.decode (String.sub dump 0 keep) in
    (* a proper prefix can never yield MORE records, and a truncated
       tail must be reported as a finding rather than silently eaten *)
    let n = List.length d.Core.Flight.d_items in
    if n > full then Alcotest.failf "prefix %d decoded %d > %d items" keep n full;
    if keep > 24 && n < full && d.Core.Flight.d_findings = [] then
      Alcotest.failf "prefix %d lost records without a finding" keep
  done

let test_corrupt_bytes_become_findings () =
  let dump = sample_dump () in
  let flips = ref 0 and caught = ref 0 in
  String.iteri
    (fun i _ ->
      if i mod 3 = 0 then begin
        incr flips;
        let b = Bytes.of_string dump in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        let d = Core.Flight.decode (Bytes.to_string b) in
        let intact = List.length d.Core.Flight.d_items in
        if d.Core.Flight.d_findings <> [] then incr caught
        else if intact <> 9 then
          Alcotest.failf "flip at %d dropped records without a finding" i
      end)
    dump;
  Alcotest.(check bool) "digest catches most flips" true (!caught > !flips / 2)

let test_garbage_decodes_totally () =
  let rng = Random.State.make [| 97 |] in
  for _ = 1 to 200 do
    let len = Random.State.int rng 512 in
    let s = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    let d = Core.Flight.decode s in
    ignore (List.length d.Core.Flight.d_items + List.length d.Core.Flight.d_findings)
  done

(* ---------- trace ids ---------- *)

let test_hex_roundtrip () =
  List.iter
    (fun t ->
      let h = Core.Flight.hex_of_trace t in
      Alcotest.(check int) "16 digits" 16 (String.length h);
      Alcotest.(check (option int64)) ("roundtrip " ^ h) (Some t)
        (Core.Flight.trace_of_hex h))
    [ 0L; 1L; 0xdeadbeefL; Int64.min_int; Int64.max_int; -1L ];
  Alcotest.(check (option int64)) "reject short" None (Core.Flight.trace_of_hex "abc");
  Alcotest.(check (option int64)) "reject uppercase" None
    (Core.Flight.trace_of_hex "00000000DEADBEEF");
  Alcotest.(check (option int64)) "reject non-hex" None
    (Core.Flight.trace_of_hex "000000000000000g")

(* ---------- open_traces ---------- *)

let test_open_traces_semantics () =
  let f = Core.Flight.create () in
  let alive = 0xaaaaL and dead = 0xddddL and noted = 0x99L in
  (* [dead] ran to a terminal done; [noted] got a verdict note; [alive]
     has activity but no terminal mark; trace 0 is unsessioned noise *)
  Core.Flight.record f ~trace:dead (ev_begin "count" 4);
  Core.Flight.record f ~trace:dead (ev_done "count" 4);
  Core.Flight.record f ~trace:noted (ev_begin "count" 4);
  Core.Flight.note f ~trace:noted ~code:"verdict" ~detail:"degraded";
  Core.Flight.record f ~trace:alive (ev_begin "count" 4);
  Core.Flight.record f ~trace:alive (ev_absorb 1 5);
  Core.Flight.record f ~trace:alive (ev_absorb 2 5);
  Core.Flight.record f ~trace:0L (ev_begin "noise" 2);
  let d = Core.Flight.decode (Core.Flight.dump f) in
  match Core.Flight.open_traces d.Core.Flight.d_items with
  | [ (t, summary) ] ->
    Alcotest.(check bool) "only the mid-flight trace" true (t = alive);
    Alcotest.(check bool) "summary says mid-flight" true
      (contains summary "mid-flight");
    Alcotest.(check bool) "summary counts absorbs" true
      (contains summary "absorbed=2")
  | l -> Alcotest.failf "open_traces returned %d entries" (List.length l)

(* ---------- label decoration vs the bound audit ---------- *)

let test_trace_decoration_is_budget_transparent () =
  let bare = "degeneracy-3-reconstruct" in
  let tagged = bare ^ "[trace=00c0ffee600dcafe]" in
  (match (Core.Bound_audit.budget_of_label bare, Core.Bound_audit.budget_of_label tagged) with
  | Some a, Some b ->
    Alcotest.(check bool) "same budget through the tag" true (a = b)
  | _ -> Alcotest.fail "both spellings must carry the theorem budget");
  (match Core.Bound_audit.classify_label tagged with
  | Core.Bound_audit.Budgeted _ -> ()
  | _ -> Alcotest.fail "tagged label must classify Budgeted");
  (* a malformed tag is a near-miss, not silently exempt *)
  match Core.Bound_audit.classify_label (bare ^ "[trace=XYZ]") with
  | Core.Bound_audit.Malformed _ -> ()
  | _ -> Alcotest.fail "bad trace tag must be flagged Malformed"

(* ---------- engine integration: anomalies leave evidence ---------- *)

let test_engine_quarantine_leaves_note () =
  let clock = ref 3.0 in
  let fl = Core.Flight.create () in
  let engine =
    Serve.Engine.create ~clock:(fun () -> !clock) ~flight:fl Serve.Engine.default_config
  in
  let c =
    match Serve.Engine.open_conn engine with
    | Ok c -> c
    | Error e -> Alcotest.failf "open_conn: %s" e
  in
  let feed frame =
    let s = Serve.Frame.encode_client frame in
    Serve.Engine.feed_bytes engine c (Bytes.of_string s) ~off:0 ~len:(String.length s)
  in
  feed (Serve.Frame.Hello { version = Serve.Frame.version });
  feed (Serve.Frame.Open { open_id = 1; protocol = "count"; n = 4; trace = 0L });
  Serve.Engine.tick engine;
  let garbage = "\xff\xff\xff\xffgarbage" in
  Serve.Engine.feed_bytes engine c
    (Bytes.of_string garbage)
    ~off:0
    ~len:(String.length garbage);
  Serve.Engine.tick engine;
  Alcotest.(check int) "quarantined" 1 (Serve.Engine.stats engine).Serve.Engine.quarantines;
  let d = Core.Flight.decode (Core.Flight.dump fl) in
  let quarantine_notes =
    List.filter
      (fun i ->
        match i.Core.Flight.i_note with Some ("quarantine", _) -> true | _ -> false)
      d.Core.Flight.d_items
  in
  Alcotest.(check int) "quarantine left a decodable note" 1 (List.length quarantine_notes);
  (match quarantine_notes with
  | [ n ] ->
    Alcotest.(check bool) "note carries the session trace" true (n.Core.Flight.i_trace <> 0L)
  | _ -> ());
  (* the quarantine note is terminal: the session's fate is on record,
     so a boot scan must NOT treat it as mid-flight *)
  match Core.Flight.open_traces d.Core.Flight.d_items with
  | [] -> ()
  | _ :: _ -> Alcotest.fail "quarantine note must count as a terminal mark"

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "wrap and drop counter" `Quick test_ring_wrap_and_drop_counter;
          Alcotest.test_case "tiny capacity clamped" `Quick test_tiny_capacity_is_clamped;
        ] );
      ( "codec",
        [
          Alcotest.test_case "events and notes roundtrip" `Quick test_roundtrip_events_and_notes;
          Alcotest.test_case "truncation never raises" `Quick test_truncated_dump_never_raises;
          Alcotest.test_case "corruption becomes findings" `Quick
            test_corrupt_bytes_become_findings;
          Alcotest.test_case "garbage decodes totally" `Quick test_garbage_decodes_totally;
          Alcotest.test_case "hex trace roundtrip" `Quick test_hex_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "dump bytes equal across domain widths" `Quick
            test_dump_bytes_deterministic_across_widths;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "open_traces semantics" `Quick test_open_traces_semantics;
          Alcotest.test_case "trace tag budget-transparent" `Quick
            test_trace_decoration_is_budget_transparent;
          Alcotest.test_case "quarantine leaves a note" `Quick
            test_engine_quarantine_leaves_note;
        ] );
    ]
