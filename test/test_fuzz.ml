(* Adversarial-message robustness.

   The model trusts nodes, but a production referee should not crash on
   a corrupted uplink.  Every reconstruction protocol's global function
   must, on arbitrary bit garbage, either return a well-typed answer or
   the documented rejection — never escape with an exception. *)

open Refnet_bits
open Refnet_graph

let flip_random_bit rng msg =
  let len = Bitvec.length msg in
  if len = 0 then msg
  else begin
    let copy = Bitvec.copy msg in
    let i = Random.State.int rng len in
    Bitvec.assign copy i (not (Bitvec.get copy i));
    copy
  end

let truncate_message msg ~keep =
  let len = min keep (Bitvec.length msg) in
  let out = Bitvec.create len in
  for i = 0 to len - 1 do
    if Bitvec.get msg i then Bitvec.set out i
  done;
  out

let random_message rng ~bits =
  let v = Bitvec.create bits in
  for i = 0 to bits - 1 do
    if Random.State.bool rng then Bitvec.set v i
  done;
  v

(* Run a reconstruction referee on tampered messages; the only
   acceptable outcomes are a graph option (any value) — exceptions fail
   the test. *)
let assert_total name protocol ~n msgs =
  match Core.Protocol.apply protocol ~n msgs with
  | (_ : Graph.t option) -> ()
  | exception e ->
    Alcotest.failf "%s: referee raised %s on tampered input" name (Printexc.to_string e)

let tamper_suite name (protocol : Graph.t option Core.Protocol.t) make_graph =
  let rng = Random.State.make [| 0xfa22; Hashtbl.hash name |] in
  let trials = 60 in
  for trial = 1 to trials do
    let g = make_graph trial in
    let n = Graph.order g in
    let msgs = Core.Simulator.local_phase protocol g in
    (* Bit flips. *)
    let flipped = Array.map (flip_random_bit rng) msgs in
    assert_total name protocol ~n flipped;
    (* Truncations. *)
    let truncated =
      Array.map (fun m -> truncate_message m ~keep:(Random.State.int rng (Bitvec.length m + 1))) msgs
    in
    assert_total name protocol ~n truncated;
    (* Pure noise of plausible size. *)
    let noise = Array.map (fun m -> random_message rng ~bits:(Bitvec.length m)) msgs in
    assert_total name protocol ~n noise;
    (* Swapped messages (wrong sender ids embedded). *)
    if n >= 2 then begin
      let swapped = Array.copy msgs in
      let a = Random.State.int rng n and b = Random.State.int rng n in
      let t = swapped.(a) in
      swapped.(a) <- swapped.(b);
      swapped.(b) <- t;
      assert_total name protocol ~n swapped
    end
  done

let test_forest_robust () =
  tamper_suite "forest" Core.Forest_protocol.reconstruct (fun trial ->
      Generators.random_tree (Random.State.make [| trial |]) ((trial mod 20) + 2))

let test_degeneracy_robust () =
  tamper_suite "degeneracy-2"
    (Core.Degeneracy_protocol.reconstruct ~k:2 ())
    (fun trial ->
      Generators.random_k_degenerate (Random.State.make [| trial |]) ((trial mod 15) + 2) ~k:2)

let test_generalized_robust () =
  tamper_suite "generalized-2"
    (Core.Generalized_degeneracy.reconstruct ~k:2 ())
    (fun trial -> Generators.gnp (Random.State.make [| trial |]) ((trial mod 10) + 2) 0.5)

let test_bounded_degree_robust () =
  tamper_suite "bounded-degree-3"
    (Core.Bounded_degree.reconstruct ~max_degree:3)
    (fun trial -> Generators.cycle ((trial mod 10) + 3))

let test_swap_never_accepted_as_original () =
  (* Swapping two distinct nodes' messages embeds wrong identifiers: the
     ID-echo check must notice (or at minimum never silently return the
     original graph as if nothing happened... it must return None since
     ids are explicit in the payload). *)
  let g = Generators.random_tree (Random.State.make [| 9 |]) 12 in
  let msgs = Core.Simulator.local_phase Core.Forest_protocol.reconstruct g in
  let swapped = Array.copy msgs in
  swapped.(0) <- msgs.(5);
  swapped.(5) <- msgs.(0);
  Alcotest.(check bool) "swap detected" true
    (Core.Protocol.apply Core.Forest_protocol.reconstruct ~n:12 swapped = None)

let test_zero_length_messages () =
  List.iter
    (fun (name, (p : Graph.t option Core.Protocol.t)) ->
      let empty = Array.make 6 Core.Message.empty in
      match Core.Protocol.apply p ~n:6 empty with
      | None -> ()
      | Some _ -> Alcotest.failf "%s accepted empty messages" name
      | exception e -> Alcotest.failf "%s raised %s" name (Printexc.to_string e))
    [
      ("forest", Core.Forest_protocol.reconstruct);
      ("degeneracy", Core.Degeneracy_protocol.reconstruct ~k:2 ());
      ("generalized", Core.Generalized_degeneracy.reconstruct ~k:2 ());
      ("bounded-degree", Core.Bounded_degree.reconstruct ~max_degree:2);
    ]

let test_corrupted_never_returns_wrong_forest () =
  (* Stronger than totality for the forest protocol: if the global phase
     does return a graph on a tampered transcript, the graph must at
     least be a forest consistent with the advertised degrees — decode
     soundness, not just crash-freedom. *)
  let rng = Random.State.make [| 0xdead |] in
  for trial = 1 to 80 do
    let g = Generators.random_tree (Random.State.make [| trial |]) 10 in
    let msgs = Core.Simulator.local_phase Core.Forest_protocol.reconstruct g in
    let tampered = Array.map (flip_random_bit rng) msgs in
    match Core.Protocol.apply Core.Forest_protocol.reconstruct ~n:10 tampered with
    | None -> ()
    | Some h -> Alcotest.(check bool) "still a forest" true (Spanning.is_forest h)
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "totality under tampering",
        [
          Alcotest.test_case "forest" `Quick test_forest_robust;
          Alcotest.test_case "degeneracy" `Quick test_degeneracy_robust;
          Alcotest.test_case "generalized" `Quick test_generalized_robust;
          Alcotest.test_case "bounded degree" `Quick test_bounded_degree_robust;
        ] );
      ( "semantic checks",
        [
          Alcotest.test_case "swapped ids detected" `Quick test_swap_never_accepted_as_original;
          Alcotest.test_case "zero-length messages" `Quick test_zero_length_messages;
          Alcotest.test_case "tampered forests stay forests" `Quick
            test_corrupted_never_returns_wrong_forest;
        ] );
    ]
