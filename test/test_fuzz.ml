(* Adversarial-message robustness.

   The model trusts nodes, but a production referee should not crash on
   a corrupted uplink.  Every reconstruction protocol's global function
   must, on arbitrary bit garbage, either return a well-typed answer or
   the documented rejection — never escape with an exception. *)

open Refnet_bits
open Refnet_graph

let flip_random_bit rng msg =
  let len = Bitvec.length msg in
  if len = 0 then msg
  else begin
    let copy = Bitvec.copy msg in
    let i = Random.State.int rng len in
    Bitvec.assign copy i (not (Bitvec.get copy i));
    copy
  end

let truncate_message msg ~keep =
  let len = min keep (Bitvec.length msg) in
  let out = Bitvec.create len in
  for i = 0 to len - 1 do
    if Bitvec.get msg i then Bitvec.set out i
  done;
  out

let random_message rng ~bits =
  let v = Bitvec.create bits in
  for i = 0 to bits - 1 do
    if Random.State.bool rng then Bitvec.set v i
  done;
  v

(* Run a reconstruction referee on tampered messages; the only
   acceptable outcomes are a graph option (any value) — exceptions fail
   the test. *)
let assert_total name protocol ~n msgs =
  match Core.Protocol.apply protocol ~n msgs with
  | (_ : Graph.t option) -> ()
  | exception e ->
    Alcotest.failf "%s: referee raised %s on tampered input" name (Printexc.to_string e)

let tamper_suite name (protocol : Graph.t option Core.Protocol.t) make_graph =
  let rng = Random.State.make [| 0xfa22; Hashtbl.hash name |] in
  let trials = 60 in
  for trial = 1 to trials do
    let g = make_graph trial in
    let n = Graph.order g in
    let msgs = Core.Simulator.local_phase protocol g in
    (* Bit flips. *)
    let flipped = Array.map (flip_random_bit rng) msgs in
    assert_total name protocol ~n flipped;
    (* Truncations. *)
    let truncated =
      Array.map (fun m -> truncate_message m ~keep:(Random.State.int rng (Bitvec.length m + 1))) msgs
    in
    assert_total name protocol ~n truncated;
    (* Pure noise of plausible size. *)
    let noise = Array.map (fun m -> random_message rng ~bits:(Bitvec.length m)) msgs in
    assert_total name protocol ~n noise;
    (* Swapped messages (wrong sender ids embedded). *)
    if n >= 2 then begin
      let swapped = Array.copy msgs in
      let a = Random.State.int rng n and b = Random.State.int rng n in
      let t = swapped.(a) in
      swapped.(a) <- swapped.(b);
      swapped.(b) <- t;
      assert_total name protocol ~n swapped
    end
  done

let test_forest_robust () =
  tamper_suite "forest" Core.Forest_protocol.reconstruct (fun trial ->
      Generators.random_tree (Random.State.make [| trial |]) ((trial mod 20) + 2))

let test_degeneracy_robust () =
  tamper_suite "degeneracy-2"
    (Core.Degeneracy_protocol.reconstruct ~k:2 ())
    (fun trial ->
      Generators.random_k_degenerate (Random.State.make [| trial |]) ((trial mod 15) + 2) ~k:2)

let test_generalized_robust () =
  tamper_suite "generalized-2"
    (Core.Generalized_degeneracy.reconstruct ~k:2 ())
    (fun trial -> Generators.gnp (Random.State.make [| trial |]) ((trial mod 10) + 2) 0.5)

let test_bounded_degree_robust () =
  tamper_suite "bounded-degree-3"
    (Core.Bounded_degree.reconstruct ~max_degree:3)
    (fun trial -> Generators.cycle ((trial mod 10) + 3))

let test_swap_never_accepted_as_original () =
  (* Swapping two distinct nodes' messages embeds wrong identifiers: the
     ID-echo check must notice (or at minimum never silently return the
     original graph as if nothing happened... it must return None since
     ids are explicit in the payload). *)
  let g = Generators.random_tree (Random.State.make [| 9 |]) 12 in
  let msgs = Core.Simulator.local_phase Core.Forest_protocol.reconstruct g in
  let swapped = Array.copy msgs in
  swapped.(0) <- msgs.(5);
  swapped.(5) <- msgs.(0);
  Alcotest.(check bool) "swap detected" true
    (Core.Protocol.apply Core.Forest_protocol.reconstruct ~n:12 swapped = None)

let test_zero_length_messages () =
  List.iter
    (fun (name, (p : Graph.t option Core.Protocol.t)) ->
      let empty = Array.make 6 Core.Message.empty in
      match Core.Protocol.apply p ~n:6 empty with
      | None -> ()
      | Some _ -> Alcotest.failf "%s accepted empty messages" name
      | exception e -> Alcotest.failf "%s raised %s" name (Printexc.to_string e))
    [
      ("forest", Core.Forest_protocol.reconstruct);
      ("degeneracy", Core.Degeneracy_protocol.reconstruct ~k:2 ());
      ("generalized", Core.Generalized_degeneracy.reconstruct ~k:2 ());
      ("bounded-degree", Core.Bounded_degree.reconstruct ~max_degree:2);
    ]

let test_corrupted_never_returns_wrong_forest () =
  (* Stronger than totality for the forest protocol: if the global phase
     does return a graph on a tampered transcript, the graph must at
     least be a forest consistent with the advertised degrees — decode
     soundness, not just crash-freedom. *)
  let rng = Random.State.make [| 0xdead |] in
  for trial = 1 to 80 do
    let g = Generators.random_tree (Random.State.make [| trial |]) 10 in
    let msgs = Core.Simulator.local_phase Core.Forest_protocol.reconstruct g in
    let tampered = Array.map (flip_random_bit rng) msgs in
    match Core.Protocol.apply Core.Forest_protocol.reconstruct ~n:10 tampered with
    | None -> ()
    | Some h -> Alcotest.(check bool) "still a forest" true (Spanning.is_forest h)
  done

(* ---------- framing layer ---------- *)

let test_unbundle_fuzz () =
  (* Arbitrary bit noise against the framing decoder: the only
     exception allowed out of [unbundle]/[read_framed] is the documented
     [Message.Malformed] — declared lengths are attacker-controlled and
     must be validated against the bits actually present. *)
  let rng = Random.State.make [| 0xf4a3 |] in
  for _ = 1 to 500 do
    let noise = random_message rng ~bits:(Random.State.int rng 200) in
    match Core.Message.unbundle ~count:(1 + Random.State.int rng 4) noise with
    | (_ : Core.Message.t list) -> ()
    | exception Core.Message.Malformed -> ()
    | exception e ->
      Alcotest.failf "unbundle leaked %s on %d-bit noise" (Printexc.to_string e)
        (Bitvec.length noise)
  done

let test_unbundle_hostile_lengths () =
  let open Refnet_bits in
  (* A frame whose gamma header claims 2^40 payload bits. *)
  let huge =
    let w = Bit_writer.create () in
    Codes.write_gamma w ((1 lsl 40) + 1);
    Bit_writer.contents w
  in
  (match Core.Message.unbundle ~count:1 huge with
  | _ -> Alcotest.fail "absurd declared length accepted"
  | exception Core.Message.Malformed -> ());
  (* All-ones: a unary prefix of 63 ones drives the gamma width past the
     62-bit read limit. *)
  let ones = Bitvec.create 70 in
  for i = 0 to 69 do
    Bitvec.set ones i
  done;
  (match Core.Message.unbundle ~count:1 ones with
  | _ -> Alcotest.fail "oversized gamma width accepted"
  | exception Core.Message.Malformed -> ());
  (* Truncated mid-payload. *)
  let frame =
    let w = Bit_writer.create () in
    Core.Message.write_framed w (random_message (Random.State.make [| 1 |]) ~bits:40);
    Bit_writer.contents w
  in
  let cut = truncate_message frame ~keep:(Bitvec.length frame - 8) in
  match Core.Message.unbundle ~count:1 cut with
  | _ -> Alcotest.fail "truncated frame accepted"
  | exception Core.Message.Malformed -> ()

let test_roundtrip_bundles_still_decode () =
  let rng = Random.State.make [| 0xb0b |] in
  for _ = 1 to 100 do
    let parts =
      List.init (1 + Random.State.int rng 5) (fun _ ->
          random_message rng ~bits:(Random.State.int rng 60))
    in
    let decoded = Core.Message.unbundle ~count:(List.length parts) (Core.Message.bundle parts) in
    Alcotest.(check bool) "bundle roundtrip" true
      (List.for_all2 Core.Message.equal parts decoded)
  done

(* ---------- hardened referees ---------- *)

let test_hardened_feed_totality () =
  (* Feed every hardened referee arbitrary garbage (wrong sizes, random
     ids, missing and repeated senders): the fold must always close into
     a verdict — no exception may escape [Protocol.feed]/[finish]. *)
  let rng = Random.State.make [| 0x5ea1 |] in
  let check_total : type a. string -> a Core.Verdict.t Core.Protocol.referee -> unit =
   fun name referee ->
    for _ = 1 to 120 do
      let n = 2 + Random.State.int rng 14 in
      match
        let feed = ref (Core.Protocol.start referee ~n) in
        for _ = 1 to Random.State.int rng (2 * n) do
          let id = 1 + Random.State.int rng (n + 2) in
          let msg = random_message rng ~bits:(Random.State.int rng 120) in
          feed := Core.Protocol.feed !feed ~id msg
        done;
        Core.Protocol.finish !feed
      with
      | (_ : a Core.Verdict.t) -> ()
      | exception e ->
        Alcotest.failf "%s: hardened referee leaked %s" name (Printexc.to_string e)
    done
  in
  check_total "forest" Core.Forest_protocol.hardened.Core.Protocol.referee;
  check_total "degeneracy-2" (Core.Degeneracy_protocol.hardened ~k:2 ()).Core.Protocol.referee;
  check_total "bounded-3" (Core.Bounded_degree.hardened ~max_degree:3).Core.Protocol.referee;
  check_total "sketch" (Core.Sketch_connectivity.hardened ~seed:3 ()).Core.Protocol.referee;
  check_total "coalition" Core.Connectivity_parts.hardened.Core.Coalition.referee;
  check_total "generic-harden"
    (Core.Protocol.harden Core.Forest_protocol.reconstruct).Core.Protocol.referee

let test_hardened_never_wrong_on_garbage () =
  (* Garbage in place of honest messages must never authenticate: the
     verdict may say anything except a wrong [Decided]. *)
  let rng = Random.State.make [| 0x900d |] in
  for trial = 1 to 60 do
    let n = 3 + (trial mod 12) in
    let g = Generators.random_tree (Random.State.make [| trial |]) n in
    let msgs = Core.Simulator.local_phase Core.Forest_protocol.hardened g in
    let tampered =
      Array.map
        (fun m -> if Random.State.bool rng then random_message rng ~bits:(Bitvec.length m) else m)
        msgs
    in
    match Core.Protocol.apply Core.Forest_protocol.hardened ~n tampered with
    | Core.Verdict.Decided (Some h) ->
      Alcotest.(check bool) "Decided only when untouched" true (Graph.equal g h)
    | Core.Verdict.Decided None -> Alcotest.fail "a tree cannot be Decided rejected"
    | Core.Verdict.Degraded (Some h, _) ->
      Graph.iter_edges h (fun u v ->
          if not (Graph.has_edge g u v) then
            Alcotest.failf "degraded output claims non-edge {%d,%d}" u v)
    | Core.Verdict.Degraded (None, _) | Core.Verdict.Inconclusive _ -> ()
  done

(* ---------- serve wire-frame decoder ---------- *)

(* The daemon's framing layer makes the same promise as the referees:
   arbitrary bytes in, typed outcome out.  Random streams, truncations
   and bit flips must land in [Frame]/[Awaiting]/[Corrupt] (decoder) or
   [Ok]/[Error] (frame parser) — an escaped exception fails the test. *)

let drain_decoder name d =
  let rec go acc =
    match Serve.Wire.next d with
    | Serve.Wire.Frame _ as f -> go (f :: acc)
    | Serve.Wire.Awaiting -> List.rev acc
    | Serve.Wire.Corrupt _ as c -> List.rev (c :: acc)
    | exception e ->
      Alcotest.failf "%s: decoder raised %s" name (Printexc.to_string e)
  in
  go []

let random_bytes rng len = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256))

let test_wire_random_streams () =
  let rng = Random.State.make [| 0x5e2e; 1 |] in
  for trial = 1 to 200 do
    let d = Serve.Wire.decoder ~max_frame:4096 () in
    let len = 1 + Random.State.int rng 512 in
    let b = random_bytes rng len in
    (* Arbitrary chunking must not change the outcome type. *)
    let off = ref 0 in
    while !off < len do
      let chunk = min (1 + Random.State.int rng 64) (len - !off) in
      Serve.Wire.push d b ~off:!off ~len:chunk;
      ignore (drain_decoder (Printf.sprintf "noise trial %d" trial) d);
      off := !off + chunk
    done;
    (* Once corrupt, the decoder must stick. *)
    match Serve.Wire.next d with
    | Serve.Wire.Corrupt _ ->
      Serve.Wire.push d (random_bytes rng 32) ~off:0 ~len:32;
      (match Serve.Wire.next d with
      | Serve.Wire.Corrupt _ -> ()
      | _ -> Alcotest.fail "poisoned decoder resumed decoding")
    | _ -> ()
  done

let sample_frames =
  lazy
    (let msg =
       let w = Bit_writer.create () in
       Codes.write_fixed w ~width:9 0b101010101;
       Core.Message.of_writer w
     in
     [
       Serve.Frame.encode_client (Serve.Frame.Hello { version = Serve.Frame.version });
       Serve.Frame.encode_client
         (Serve.Frame.Open { open_id = 7; protocol = "count"; n = 12; trace = 0x7e57abadcafeL });
       Serve.Frame.encode_client (Serve.Frame.Msg { session = 3; node = 5; payload = msg });
       Serve.Frame.encode_client (Serve.Frame.Finish { session = 3 });
       Serve.Frame.encode_server
         (Serve.Frame.Verdict
            {
              session = 3;
              status = Serve.Frame.Decided;
              timeout = Serve.Frame.No_timeout;
              payload = "nodes=4;degsum=6";
              missing = 0;
              malformed = 0;
              duplicated = 0;
              undetermined = 0;
              trace = 0x1badb002L;
            });
     ])

let test_wire_truncated_frames () =
  List.iter
    (fun frame ->
      let len = String.length frame in
      for keep = 0 to len - 1 do
        (* Every proper prefix is just an incomplete frame: Awaiting,
           never Corrupt, never an exception. *)
        let d = Serve.Wire.decoder () in
        Serve.Wire.push d (Bytes.of_string frame) ~off:0 ~len:keep;
        (match drain_decoder "truncated" d with
        | [] -> ()
        | [ Serve.Wire.Corrupt e ] -> Alcotest.failf "prefix %d/%d corrupt: %s" keep len e
        | _ -> Alcotest.failf "prefix %d/%d produced a frame" keep len);
        (* Completing the bytes must then decode exactly one frame. *)
        Serve.Wire.push d (Bytes.of_string frame) ~off:keep ~len:(len - keep);
        match drain_decoder "completed" d with
        | [ Serve.Wire.Frame _ ] -> ()
        | _ -> Alcotest.failf "completed frame at split %d/%d did not decode" keep len
      done)
    (Lazy.force sample_frames)

let test_wire_bitflip_frames () =
  let rng = Random.State.make [| 0x5e2e; 2 |] in
  List.iter
    (fun frame ->
      for _ = 1 to 40 do
        let b = Bytes.of_string frame in
        let i = Random.State.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Random.State.int rng 8)));
        let d = Serve.Wire.decoder () in
        Serve.Wire.push d b ~off:0 ~len:(Bytes.length b);
        match drain_decoder "bitflip" d with
        | [ Serve.Wire.Corrupt _ ] | [] -> ()
        | [ Serve.Wire.Frame { kind; payload } ] ->
          (* A flip the digest cannot see (kind byte, or a flip that kept
             the payload digest — impossible for single flips, but kind
             is outside the digest): the typed parser must still fold it
             into a result. *)
          (match Serve.Frame.decode_client ~kind payload with
          | Ok _ | Error _ -> ());
          (match Serve.Frame.decode_server ~kind payload with
          | Ok _ | Error _ -> ())
        | _ -> Alcotest.fail "bitflipped frame decoded as several frames"
      done)
    (Lazy.force sample_frames)

let test_frame_parser_random_payloads () =
  let rng = Random.State.make [| 0x5e2e; 3 |] in
  for _ = 1 to 2000 do
    let kind = Random.State.int rng 256 in
    let payload = Bytes.to_string (random_bytes rng (Random.State.int rng 64)) in
    (match Serve.Frame.decode_client ~kind payload with
    | Ok _ | Error _ -> ()
    | exception e -> Alcotest.failf "decode_client raised %s" (Printexc.to_string e));
    match Serve.Frame.decode_server ~kind payload with
    | Ok _ | Error _ -> ()
    | exception e -> Alcotest.failf "decode_server raised %s" (Printexc.to_string e)
  done

let test_engine_feed_garbage () =
  (* End to end: garbage into a live engine quarantines the connection;
     nothing escapes the outermost shell. *)
  let rng = Random.State.make [| 0x5e2e; 4 |] in
  let engine = Serve.Engine.create ~clock:(fun () -> 0.) Serve.Engine.default_config in
  for _ = 1 to 50 do
    match Serve.Engine.open_conn engine with
    | Error e -> Alcotest.failf "open_conn refused: %s" e
    | Ok c ->
      let b = random_bytes rng (1 + Random.State.int rng 256) in
      Serve.Engine.feed_bytes engine c b ~off:0 ~len:(Bytes.length b);
      Serve.Engine.tick engine;
      ignore (Serve.Engine.take_output engine c);
      Serve.Engine.close_conn engine c
  done;
  let s = Serve.Engine.stats engine in
  Alcotest.(check int) "no escapes" 0 s.Serve.Engine.quarantine_escapes;
  Alcotest.(check bool) "garbage quarantines" true (s.Serve.Engine.quarantines > 0)

let () =
  Alcotest.run "fuzz"
    [
      ( "totality under tampering",
        [
          Alcotest.test_case "forest" `Quick test_forest_robust;
          Alcotest.test_case "degeneracy" `Quick test_degeneracy_robust;
          Alcotest.test_case "generalized" `Quick test_generalized_robust;
          Alcotest.test_case "bounded degree" `Quick test_bounded_degree_robust;
        ] );
      ( "semantic checks",
        [
          Alcotest.test_case "swapped ids detected" `Quick test_swap_never_accepted_as_original;
          Alcotest.test_case "zero-length messages" `Quick test_zero_length_messages;
          Alcotest.test_case "tampered forests stay forests" `Quick
            test_corrupted_never_returns_wrong_forest;
        ] );
      ( "framing",
        [
          Alcotest.test_case "unbundle on noise" `Quick test_unbundle_fuzz;
          Alcotest.test_case "hostile declared lengths" `Quick test_unbundle_hostile_lengths;
          Alcotest.test_case "bundle roundtrip" `Quick test_roundtrip_bundles_still_decode;
        ] );
      ( "hardened referees",
        [
          Alcotest.test_case "feed totality" `Quick test_hardened_feed_totality;
          Alcotest.test_case "no wrong Decided on garbage" `Quick
            test_hardened_never_wrong_on_garbage;
        ] );
      ( "serve wire frames",
        [
          Alcotest.test_case "random streams" `Quick test_wire_random_streams;
          Alcotest.test_case "truncated frames" `Quick test_wire_truncated_frames;
          Alcotest.test_case "bitflipped frames" `Quick test_wire_bitflip_frames;
          Alcotest.test_case "random typed payloads" `Quick test_frame_parser_random_payloads;
          Alcotest.test_case "engine swallows garbage" `Quick test_engine_feed_garbage;
        ] );
    ]
