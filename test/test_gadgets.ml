open Refnet_graph

let all_pairs n f =
  for s = 1 to n do
    for t = 1 to n do
      if s <> t then f s t
    done
  done

let test_square_gadget_shape () =
  let g = Generators.path 4 in
  let g' = Core.Gadgets.square g 1 3 in
  Alcotest.(check int) "order doubles" 8 (Graph.order g');
  (* n pendants + 1 bridge on top of the original edges. *)
  Alcotest.(check int) "size" (Graph.size g + 4 + 1) (Graph.size g');
  Alcotest.(check bool) "pendant" true (Graph.has_edge g' 2 6);
  Alcotest.(check bool) "bridge" true (Graph.has_edge g' 5 7)

let test_square_gadget_iff () =
  (* Theorem 1's equivalence, checked over every pair of a square-free
     base graph. *)
  let g = Generators.random_square_free (Random.State.make [| 4 |]) 10 ~attempts:200 in
  all_pairs 10 (fun s t ->
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d)" s t)
        (Graph.has_edge g s t)
        (Cycles.has_square (Core.Gadgets.square g s t)))

let test_square_gadget_on_tree () =
  let g = Generators.complete_binary_tree 7 in
  all_pairs 7 (fun s t ->
      Alcotest.(check bool)
        (Printf.sprintf "tree pair (%d,%d)" s t)
        (Graph.has_edge g s t)
        (Cycles.has_square (Core.Gadgets.square g s t)))

let test_diameter_gadget_shape () =
  let g = Generators.cycle 5 in
  let g' = Core.Gadgets.diameter g 2 4 in
  Alcotest.(check int) "order + 3" 8 (Graph.order g');
  Alcotest.(check bool) "s pendant" true (Graph.has_edge g' 2 6);
  Alcotest.(check bool) "t pendant" true (Graph.has_edge g' 4 7);
  Alcotest.(check int) "universal" 5 (Graph.degree g' 8)

let test_diameter_gadget_iff () =
  (* Theorem 2's equivalence holds for arbitrary base graphs — even
     disconnected ones, thanks to the universal vertex. *)
  let g = Graph.disjoint_union (Generators.path 3) (Generators.cycle 4) in
  let n = Graph.order g in
  all_pairs n (fun s t ->
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d)" s t)
        (Graph.has_edge g s t)
        (Distance.diameter_at_most (Core.Gadgets.diameter g s t) 3))

let test_diameter_gadget_longest_path_is_8_to_9 () =
  (* The paper's Figure 1 remark: the critical pair is always the two
     pendant vertices n+1 and n+2. *)
  let g = Generators.path 7 in
  let g' = Core.Gadgets.diameter g 1 7 in
  match Distance.distance g' 8 9 with
  | Some d -> Alcotest.(check int) "pendant-to-pendant distance" 4 d
  | None -> Alcotest.fail "gadget must be connected"

let test_triangle_gadget_shape () =
  let g = Generators.complete_bipartite 3 3 in
  let g' = Core.Gadgets.triangle g 1 5 in
  Alcotest.(check int) "order + 1" 7 (Graph.order g');
  Alcotest.(check (list int)) "apex neighbours" [ 1; 5 ] (Graph.neighbors g' 7)

let test_triangle_gadget_iff () =
  let g = Generators.random_bipartite (Random.State.make [| 6 |]) ~left:5 ~right:5 0.5 in
  all_pairs 10 (fun s t ->
      Alcotest.(check bool)
        (Printf.sprintf "pair (%d,%d)" s t)
        (Graph.has_edge g s t)
        (Cycles.has_triangle (Core.Gadgets.triangle g s t)))

let test_gadget_guards () =
  let g = Generators.path 4 in
  Alcotest.check_raises "s = t" (Invalid_argument "Gadgets.square: bad vertex pair") (fun () ->
      ignore (Core.Gadgets.square g 2 2));
  Alcotest.check_raises "out of range" (Invalid_argument "Gadgets.diameter: bad vertex pair")
    (fun () -> ignore (Core.Gadgets.diameter g 1 9))

let test_fictitious_neighborhoods_match () =
  (* The referee's predicted neighbourhoods for fictitious vertices must
     equal the true gadget adjacency. *)
  let g = Generators.cycle 6 in
  let n = 6 in
  all_pairs n (fun s t ->
      let sq = Core.Gadgets.square g s t in
      for j = n + 1 to 2 * n do
        Alcotest.(check (list int))
          (Printf.sprintf "square fict %d (%d,%d)" j s t)
          (Graph.neighbors sq j)
          (Core.Gadgets.square_fictitious ~n ~s ~t j)
      done;
      let dm = Core.Gadgets.diameter g s t in
      for j = n + 1 to n + 3 do
        Alcotest.(check (list int))
          (Printf.sprintf "diameter fict %d (%d,%d)" j s t)
          (Graph.neighbors dm j)
          (Core.Gadgets.diameter_fictitious ~n ~s ~t j)
      done;
      let tr = Core.Gadgets.triangle g s t in
      Alcotest.(check (list int))
        (Printf.sprintf "triangle fict (%d,%d)" s t)
        (Graph.neighbors tr (n + 1))
        (Core.Gadgets.triangle_fictitious ~n ~s ~t (n + 1)))

let test_real_vertex_neighborhoods () =
  (* Square gadget: a real vertex's neighbourhood never depends on (s,t);
     that independence is what lets Δ send a single message. *)
  let g = Generators.grid 2 3 in
  let n = 6 in
  let base = Core.Gadgets.square g 1 2 in
  all_pairs n (fun s t ->
      let g' = Core.Gadgets.square g s t in
      for v = 1 to n do
        Alcotest.(check (list int))
          (Printf.sprintf "vertex %d under (%d,%d)" v s t)
          (Graph.neighbors base v)
          (Graph.neighbors g' v)
      done)

let test_batch_equivalence () =
  (* A single reused Batch must produce, pair after pair, exactly the
     graphs the one-shot constructors build — including after the toggled
     pair edges are removed again. *)
  let g = Generators.gnp (Random.State.make [| 11 |]) 9 0.3 in
  let n = Graph.order g in
  let sq = Core.Gadgets.Batch.square g in
  let dm = Core.Gadgets.Batch.diameter g in
  let tr = Core.Gadgets.Batch.triangle g in
  all_pairs n (fun s t ->
      Alcotest.(check bool)
        (Printf.sprintf "square (%d,%d)" s t)
        true
        (Graph.equal (Core.Gadgets.Batch.instantiate sq ~s ~t) (Core.Gadgets.square g s t));
      Alcotest.(check bool)
        (Printf.sprintf "diameter (%d,%d)" s t)
        true
        (Graph.equal (Core.Gadgets.Batch.instantiate dm ~s ~t) (Core.Gadgets.diameter g s t));
      Alcotest.(check bool)
        (Printf.sprintf "triangle (%d,%d)" s t)
        true
        (Graph.equal (Core.Gadgets.Batch.instantiate tr ~s ~t) (Core.Gadgets.triangle g s t)))

let prop_square_iff_random_trees =
  QCheck2.Test.make ~name:"square gadget equivalence on random trees" ~count:40
    QCheck2.Gen.(pair (int_range 2 12) int)
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed; n |]) n in
      let ok = ref true in
      for s = 1 to n do
        for t = 1 to n do
          if s <> t then
            if Cycles.has_square (Core.Gadgets.square g s t) <> Graph.has_edge g s t then
              ok := false
        done
      done;
      !ok)

let prop_diameter_iff_random_graphs =
  QCheck2.Test.make ~name:"diameter gadget equivalence on random graphs" ~count:30
    QCheck2.Gen.(pair (int_range 2 10) int)
    (fun (n, seed) ->
      let g = Generators.gnp (Random.State.make [| seed; n |]) n 0.3 in
      let ok = ref true in
      for s = 1 to n do
        for t = 1 to n do
          if s <> t then
            if Distance.diameter_at_most (Core.Gadgets.diameter g s t) 3 <> Graph.has_edge g s t
            then ok := false
        done
      done;
      !ok)

let prop_triangle_iff_random_bipartite =
  QCheck2.Test.make ~name:"triangle gadget equivalence on random bipartite" ~count:30
    QCheck2.Gen.(pair (int_range 1 6) int)
    (fun (half, seed) ->
      let g =
        Generators.random_bipartite (Random.State.make [| seed; half |]) ~left:half ~right:half 0.5
      in
      let n = 2 * half in
      let ok = ref true in
      for s = 1 to n do
        for t = 1 to n do
          if s <> t then
            if Cycles.has_triangle (Core.Gadgets.triangle g s t) <> Graph.has_edge g s t then
              ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "gadgets"
    [
      ( "square (Theorem 1)",
        [
          Alcotest.test_case "shape" `Quick test_square_gadget_shape;
          Alcotest.test_case "iff on square-free" `Quick test_square_gadget_iff;
          Alcotest.test_case "iff on tree" `Quick test_square_gadget_on_tree;
        ] );
      ( "diameter (Theorem 2, Fig 1)",
        [
          Alcotest.test_case "shape" `Quick test_diameter_gadget_shape;
          Alcotest.test_case "iff arbitrary base" `Quick test_diameter_gadget_iff;
          Alcotest.test_case "critical pair 8-9" `Quick test_diameter_gadget_longest_path_is_8_to_9;
        ] );
      ( "triangle (Theorem 3, Fig 2)",
        [
          Alcotest.test_case "shape" `Quick test_triangle_gadget_shape;
          Alcotest.test_case "iff on bipartite" `Quick test_triangle_gadget_iff;
        ] );
      ( "referee view",
        [
          Alcotest.test_case "guards" `Quick test_gadget_guards;
          Alcotest.test_case "fictitious neighbourhoods" `Quick test_fictitious_neighborhoods_match;
          Alcotest.test_case "real vertices (s,t)-independent" `Quick test_real_vertex_neighborhoods;
        ] );
      ( "batch",
        [ Alcotest.test_case "Batch = one-shot constructors" `Quick test_batch_equivalence ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_square_iff_random_trees;
            prop_diameter_iff_random_graphs;
            prop_triangle_iff_random_bipartite;
          ] );
    ]
