open Refnet_graph

let graph = Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal

let test_edge_list_roundtrip () =
  let g = Generators.petersen () in
  Alcotest.check graph "roundtrip" g (Gio.of_edge_list (Gio.to_edge_list g));
  let e = Graph.empty 4 in
  Alcotest.check graph "edgeless" e (Gio.of_edge_list (Gio.to_edge_list e))

let test_edge_list_malformed () =
  Alcotest.check_raises "empty" (Invalid_argument "Gio.of_edge_list: empty input") (fun () ->
      ignore (Gio.of_edge_list "  \n "));
  Alcotest.check_raises "count mismatch"
    (Invalid_argument "Gio.of_edge_list: edge count mismatch") (fun () ->
      ignore (Gio.of_edge_list "3 2\n1 2\n"));
  Alcotest.check_raises "bad ints" (Invalid_argument "Gio.of_edge_list: bad integers")
    (fun () -> ignore (Gio.of_edge_list "x y\n"))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_dot_output () =
  let s = Gio.to_dot ~name:"demo" (Graph.of_edges 3 [ (1, 2) ]) in
  Alcotest.(check bool) "header" true (String.length s > 10 && String.sub s 0 10 = "graph demo");
  Alcotest.(check bool) "edge present" true (contains ~needle:"1 -- 2;" s)

let test_graph6_known_values () =
  (* K3 encodes as "Bw" and P3 (1-2-3) as "Bo"? Check against nauty
     conventions: n=3 -> 'B'; K3 upper triangle bits (1,2)(1,3)(2,3) =
     111 -> 111000 -> 56 + 63 = 119 = 'w'. *)
  Alcotest.(check string) "K3" "Bw" (Gio.to_graph6 (Generators.complete 3));
  Alcotest.(check string) "empty n=5" "D??" (Gio.to_graph6 (Graph.empty 5))

let test_graph6_roundtrip_families () =
  List.iter
    (fun g -> Alcotest.check graph "roundtrip" g (Gio.of_graph6 (Gio.to_graph6 g)))
    [
      Generators.petersen ();
      Generators.grid 4 5;
      Generators.complete 7;
      Graph.empty 1;
      Graph.empty 0;
      Generators.cycle 63;
      Generators.path 64;
    ]

let test_graph6_large_n_header () =
  (* n > 62 switches to the 4-byte header. *)
  let g = Generators.path 80 in
  let s = Gio.to_graph6 g in
  Alcotest.(check char) "marker" '~' s.[0];
  Alcotest.check graph "roundtrip" g (Gio.of_graph6 s)

let test_graph6_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Gio.of_graph6: empty input") (fun () ->
      ignore (Gio.of_graph6 ""));
  Alcotest.check_raises "truncated" (Invalid_argument "Gio.of_graph6: truncated input")
    (fun () -> ignore (Gio.of_graph6 "D"))

let gen_graph =
  QCheck2.Gen.(
    bind (int_range 1 40) (fun n ->
        map
          (fun seed -> Refnet_graph.Generators.gnp (Random.State.make [| seed; n |]) n 0.25)
          int))

let prop_graph6_roundtrip =
  QCheck2.Test.make ~name:"graph6 roundtrip" ~count:200 gen_graph (fun g ->
      Graph.equal g (Gio.of_graph6 (Gio.to_graph6 g)))

let prop_edge_list_roundtrip =
  QCheck2.Test.make ~name:"edge list roundtrip" ~count:200 gen_graph (fun g ->
      Graph.equal g (Gio.of_edge_list (Gio.to_edge_list g)))

let prop_graph6_length =
  QCheck2.Test.make ~name:"graph6 length is header + ceil(C(n,2)/6)" ~count:200 gen_graph
    (fun g ->
      let n = Graph.order g in
      let header = if n <= 62 then 1 else 4 in
      String.length (Gio.to_graph6 g) = header + ((n * (n - 1) / 2) + 5) / 6)

(* ---------- streaming edge-list files ---------- *)

let with_temp_file contents f =
  let path = Filename.temp_file "refnet_gio" ".edges" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match contents with
      | Some s ->
        let oc = open_out path in
        output_string oc s;
        close_out oc
      | None -> ());
      f path)

let expect_invalid_with ~needle f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument carrying %S" needle
  | exception Invalid_argument msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message %S carries %S" msg needle)
      true (contains ~needle msg)

let test_file_roundtrip () =
  List.iter
    (fun g ->
      with_temp_file None (fun path ->
          Gio.to_edge_list_file path g;
          Alcotest.check graph "graph_of_file" g (Gio.graph_of_file path);
          Alcotest.check graph "csr_of_file" g (Csr.to_graph (Gio.csr_of_file path))))
    [ Generators.grid 5 7; Generators.petersen (); Graph.empty 4 ]

let test_file_blank_lines () =
  with_temp_file (Some "3 2\n\n1 2\n   \n2 3\n") (fun path ->
      Alcotest.check graph "blank lines skipped"
        (Graph.of_edges 3 [ (1, 2); (2, 3) ])
        (Gio.graph_of_file path))

(* Edge lists written on other platforms: CRLF endings, tab separators,
   runs of spaces and trailing blanks must load identically to native
   files — both through the streaming loader and the string parser. *)
let test_file_foreign_whitespace () =
  let expected = Graph.of_edges 3 [ (1, 2); (2, 3) ] in
  List.iter
    (fun (label, contents) ->
      with_temp_file (Some contents) (fun path ->
          Alcotest.check graph (label ^ " (file)") expected (Gio.graph_of_file path);
          Alcotest.check graph (label ^ " (csr)") expected
            (Csr.to_graph (Gio.csr_of_file path)));
      Alcotest.check graph (label ^ " (string)") expected (Gio.of_edge_list contents))
    [
      ("crlf", "3 2\r\n1 2\r\n2 3\r\n");
      ("tabs", "3\t2\n1\t2\n2\t3\n");
      ("trailing blanks", "3 2  \n1 2 \n2 3\t\n");
      ("mixed runs", "3 \t 2\r\n1  \t2  \r\n2 \t\t3\n");
      ("no final newline", "3 2\r\n1 2\r\n2 3");
    ]

(* Parse and consumer errors carry the offending file:line. *)
let test_file_errors_carry_line_numbers () =
  let cases =
    [
      ("3 1\n1 2\nx y\n", ":3: expected two integers");
      ("3 1\n1 2 3\n", ":2: expected two fields");
      ("-1 0\n", ":1: negative order or size in header");
      ("3 2\n1 2\n", "edge count mismatch (header says 2, found 1)");
      ("3 1\n1 9\n", ":2: ");
      ("3 1\n2 2\n", ":2: ");
      ("", "empty input");
      (" \n\n", "empty input");
    ]
  in
  List.iter
    (fun (contents, needle) ->
      with_temp_file (Some contents) (fun path ->
          (* Both streaming consumers surface the same diagnostics. *)
          expect_invalid_with ~needle (fun () -> ignore (Gio.graph_of_file path));
          expect_invalid_with ~needle (fun () -> ignore (Gio.csr_of_file path))))
    cases

let test_file_csr_streaming_agrees () =
  (* The two streaming loaders and the in-memory parser agree on a
     random graph's file. *)
  let g = Generators.gnp (Random.State.make [| 3; 14 |]) 60 0.1 in
  with_temp_file None (fun path ->
      Gio.to_edge_list_file path g;
      let via_string = Gio.of_edge_list (Gio.to_edge_list g) in
      Alcotest.check graph "string vs file" via_string (Gio.graph_of_file path);
      Alcotest.check graph "file vs csr file" (Gio.graph_of_file path)
        (Csr.to_graph (Gio.csr_of_file path)))

let () =
  Alcotest.run "gio"
    [
      ( "edge list / dot",
        [
          Alcotest.test_case "roundtrip" `Quick test_edge_list_roundtrip;
          Alcotest.test_case "malformed" `Quick test_edge_list_malformed;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ( "graph6",
        [
          Alcotest.test_case "known values" `Quick test_graph6_known_values;
          Alcotest.test_case "family roundtrips" `Quick test_graph6_roundtrip_families;
          Alcotest.test_case "large n header" `Quick test_graph6_large_n_header;
          Alcotest.test_case "invalid input" `Quick test_graph6_invalid;
        ] );
      ( "streaming files",
        [
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "blank lines" `Quick test_file_blank_lines;
          Alcotest.test_case "foreign whitespace" `Quick test_file_foreign_whitespace;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_file_errors_carry_line_numbers;
          Alcotest.test_case "csr loader agreement" `Quick test_file_csr_streaming_agrees;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_graph6_roundtrip; prop_edge_list_roundtrip; prop_graph6_length ] );
    ]
