(* Graph_source substrate: implicit families vs their materialized
   twins, CSR round-trips, and the backend-equivalence contract — the
   same labelled graph yields a bit-identical transcript whichever
   backend built the views, at any pool width and chunk size. *)

open Refnet_graph

let graph = Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* ---------- implicit families ---------- *)

let test_implicit_twins () =
  List.iter
    (fun (spec, twin) ->
      Alcotest.check graph spec twin (Implicit.materialize (Implicit.parse spec)))
    [
      ("path:17", Generators.path 17);
      ("path:1", Generators.path 1);
      ("cycle:9", Generators.cycle 9);
      ("complete:8", Generators.complete 8);
      ("star:10", Generators.star 10);
      ("grid:4x6", Generators.grid 4 6);
      ("grid:1x5", Generators.grid 1 5);
      ("hypercube:4", Generators.hypercube 4);
      ("hypercube:0", Generators.hypercube 0);
      ("implicit:path:5", Generators.path 5);
    ]

(* Every family's query oracles must agree with the materialized twin:
   neighbours (strictly increasing), degree, has_edge, closed-form
   size. *)
let test_implicit_oracles () =
  List.iter
    (fun spec ->
      let t = Implicit.parse spec in
      let n = Implicit.order t in
      let g = Implicit.materialize t in
      Alcotest.(check int) (spec ^ ": size") (Graph.size g) (Implicit.size t);
      for v = 1 to n do
        let nbrs = Implicit.neighbors t v in
        Alcotest.(check (list int)) (spec ^ ": neighbors") (Graph.neighbors g v) nbrs;
        Alcotest.(check int) (spec ^ ": degree") (List.length nbrs) (Implicit.degree t v);
        Alcotest.(check (list int))
          (spec ^ ": array path")
          nbrs
          (Array.to_list (Implicit.neighbors_array t v));
        ignore
          (List.fold_left
             (fun prev u ->
               if u <= prev then Alcotest.failf "%s: neighbours of %d not increasing" spec v;
               u)
             0 nbrs)
      done;
      for u = 1 to n do
        for v = 1 to n do
          Alcotest.(check bool)
            (Printf.sprintf "%s: has_edge %d %d" spec u v)
            (Graph.has_edge g u v) (Implicit.has_edge t u v)
        done
      done)
    [
      "path:13"; "cycle:12"; "complete:7"; "star:9"; "grid:5x3"; "hypercube:3";
      "regular:24:4:7"; "regular:15:4:2"; "regular:10:3:5"; "regular:9:2:1";
      "degenerate:40:3:5"; "degenerate:6:2:1"; "degenerate:30:1:4";
    ]

let test_regular_family () =
  List.iter
    (fun (n, d, seed) ->
      let t = Implicit.make (Implicit.Regular { n; d; seed }) in
      for v = 1 to n do
        Alcotest.(check int) (Printf.sprintf "regular(%d,%d) degree of %d" n d v) d
          (Implicit.degree t v)
      done;
      let t2 = Implicit.parse (Printf.sprintf "regular:%d:%d:%d" n d seed) in
      Alcotest.check graph "seed-deterministic" (Implicit.materialize t)
        (Implicit.materialize t2))
    [ (24, 4, 7); (15, 4, 2); (10, 3, 5); (32, 6, 3); (7, 6, 1) ];
  expect_invalid "n*d odd" (fun () ->
      Implicit.make (Implicit.Regular { n = 5; d = 3; seed = 1 }));
  expect_invalid "d >= n" (fun () ->
      Implicit.make (Implicit.Regular { n = 4; d = 4; seed = 1 }))

let test_degenerate_family () =
  List.iter
    (fun (n, k, seed) ->
      let t = Implicit.make (Implicit.Degenerate { n; k; seed }) in
      let g = Implicit.materialize t in
      Alcotest.(check bool)
        (Printf.sprintf "degenerate(%d,%d): degeneracy <= k" n k)
        true
        (Degeneracy.degeneracy g <= k);
      Alcotest.(check int) "closed-form size" (Graph.size g) (Implicit.size t))
    [ (40, 3, 5); (25, 1, 2); (12, 5, 9); (3, 4, 1) ];
  expect_invalid "k = 0" (fun () ->
      Implicit.make (Implicit.Degenerate { n = 5; k = 0; seed = 1 }));
  expect_invalid "k > window" (fun () ->
      Implicit.make (Implicit.Degenerate { n = 5; k = Implicit.degenerate_window + 1; seed = 1 }))

let test_implicit_parse_errors () =
  List.iter
    (fun spec -> expect_invalid spec (fun () -> Implicit.parse spec))
    [ ""; "path"; "path:x"; "grid:5"; "grid:0x4"; "cycle:2"; "wheel:5"; "regular:10"; "path:-3" ]

let test_parse_family_sizes () =
  List.iter
    (fun n ->
      List.iter
        (fun spec ->
          let t = Implicit.parse_family spec n in
          match spec with
          | "hypercube" ->
            let m = Implicit.order t in
            Alcotest.(check bool) "power of two <= n" true (m <= n && m land (m - 1) = 0)
          | _ -> Alcotest.(check int) (spec ^ ": order") n (Implicit.order t))
        [ "path"; "implicit:grid"; "regular:4:7"; "degenerate:3"; "hypercube" ])
    [ 1; 12; 36; 100 ]

(* ---------- CSR ---------- *)

let test_csr_of_graph_roundtrip () =
  let r = Random.State.make [| 11 |] in
  List.iter
    (fun g ->
      let c = Csr.of_graph g in
      Alcotest.check graph "to_graph" g (Csr.to_graph c);
      Alcotest.(check int) "size" (Graph.size g) (Csr.size c);
      List.iter
        (fun v ->
          Alcotest.(check (list int)) "neighbors" (Graph.neighbors g v) (Csr.neighbors c v);
          Alcotest.(check int) "degree" (Graph.degree g v) (Csr.degree c v))
        (Graph.vertices g);
      let n = Graph.order g in
      for u = 1 to n do
        for v = 1 to n do
          Alcotest.(check bool) "has_edge" (Graph.has_edge g u v) (Csr.has_edge c u v)
        done
      done)
    [
      Generators.gnp r 40 0.15;
      Generators.petersen ();
      Graph.empty 6;
      Graph.empty 0;
      Generators.star 17;
    ]

let test_csr_of_edges () =
  (* Duplicates (in either orientation) collapse to one edge. *)
  let c = Csr.of_edges 4 [ (1, 2); (2, 1); (3, 4); (1, 2); (4, 3) ] in
  Alcotest.check graph "dedupe" (Graph.of_edges 4 [ (1, 2); (3, 4) ]) (Csr.to_graph c);
  Alcotest.(check int) "size after dedupe" 2 (Csr.size c);
  expect_invalid "self-loop" (fun () -> Csr.of_edges 3 [ (1, 1) ]);
  expect_invalid "out of range" (fun () -> Csr.of_edges 3 [ (1, 4) ]);
  expect_invalid "negative order" (fun () -> Csr.of_edges (-1) [])

(* ---------- Graph_source front door ---------- *)

let test_source_parse () =
  let g = Generators.path 5 in
  let backend spec = Graph_source.backend (Graph_source.parse ~graph:g spec) in
  Alcotest.(check string) "materialized" "materialized" (backend "materialized");
  Alcotest.(check string) "csr" "csr" (backend "csr");
  Alcotest.(check string) "implicit" "implicit:path"
    (Graph_source.backend (Graph_source.parse "implicit:path:9"));
  expect_invalid "csr needs a graph" (fun () -> Graph_source.parse "csr");
  expect_invalid "unknown backend" (fun () -> Graph_source.parse ~graph:g "adjacency")

let test_source_queries_agree () =
  let imp = Implicit.parse "regular:18:4:3" in
  let g = Implicit.materialize imp in
  let sources =
    [
      ("materialized", Graph_source.of_graph g);
      ("csr", Graph_source.of_csr (Csr.of_graph g));
      ("implicit", Graph_source.of_implicit imp);
      ("to_csr of implicit", Graph_source.of_csr (Graph_source.to_csr (Graph_source.of_implicit imp)));
    ]
  in
  List.iter
    (fun (name, src) ->
      Alcotest.(check int) (name ^ ": order") (Graph.order g) (Graph_source.order src);
      Alcotest.(check int) (name ^ ": size") (Graph.size g) (Graph_source.size src);
      Alcotest.check graph (name ^ ": materialize") g (Graph_source.materialize src);
      List.iter
        (fun v ->
          Alcotest.(check (list int))
            (name ^ ": neighbors")
            (Graph.neighbors g v)
            (Graph_source.neighbors src v);
          let arr, off, len = Graph_source.neighbors_slice src v in
          Alcotest.(check (list int))
            (name ^ ": slice")
            (Graph.neighbors g v)
            (Array.to_list (Array.sub arr off len)))
        (Graph.vertices g))
    sources

(* ---------- backend-equivalence of engine runs ---------- *)

let transcript_eq name (o1, (t1 : Core.Simulator.transcript)) (o2, (t2 : Core.Simulator.transcript)) =
  Alcotest.(check bool) (name ^ ": same output") true (o1 = o2);
  Alcotest.(check (array int))
    (name ^ ": same message bits")
    t1.Core.Simulator.message_bits t2.Core.Simulator.message_bits

let sources_of imp =
  let g = Implicit.materialize imp in
  ( g,
    [
      ("materialized", Graph_source.of_graph g);
      ("csr", Graph_source.of_csr (Csr.of_graph g));
      ("implicit", Graph_source.of_implicit imp);
    ] )

let test_run_source_equivalence () =
  List.iter
    (fun spec ->
      let imp = Implicit.parse spec in
      let g, sources = sources_of imp in
      let n = Implicit.order imp in
      List.iter
        (fun (pname, run_ref, run_src) ->
          let reference = run_ref g in
          List.iter
            (fun (bname, src) ->
              let name = Printf.sprintf "%s/%s/%s" spec pname bname in
              transcript_eq name reference (run_src ?domains:None ?chunk:None src);
              List.iter
                (fun domains ->
                  transcript_eq
                    (Printf.sprintf "%s@%dd" name domains)
                    reference
                    (run_src ?domains:(Some domains) ?chunk:None src))
                [ 1; 2; 4 ];
              List.iter
                (fun chunk ->
                  transcript_eq
                    (Printf.sprintf "%s@chunk=%d" name chunk)
                    reference
                    (run_src ?domains:None ?chunk:(Some chunk) src))
                [ 1; 3; n ])
            sources)
        [
          ( "forest-recognize",
            (fun g -> Core.Simulator.run Core.Forest_protocol.recognize g),
            fun ?domains ?chunk src ->
              Core.Simulator.run_source ?domains ?chunk Core.Forest_protocol.recognize src );
          ( "edge-count",
            (fun g ->
              let out, t = Core.Simulator.run Core.Easy_protocols.edge_count g in
              (out = Graph.size g, t)),
            fun ?domains ?chunk src ->
              let out, t =
                Core.Simulator.run_source ?domains ?chunk Core.Easy_protocols.edge_count src
              in
              (out = Graph_source.size src, t) );
        ])
    [ "path:23"; "grid:4x5"; "regular:16:4:7"; "degenerate:21:3:5" ]

let test_run_faulty_source_clean_channel () =
  let imp = Implicit.parse "path:19" in
  let _, sources = sources_of imp in
  List.iter
    (fun (bname, src) ->
      let reference = Core.Simulator.run_source Core.Forest_protocol.recognize src in
      transcript_eq
        (bname ^ ": run_faulty_source, empty plan")
        reference
        (Core.Simulator.run_faulty_source Core.Forest_protocol.recognize src))
    sources

let test_coalition_run_source_equivalence () =
  let imp = Implicit.parse "regular:20:4:9" in
  let g, sources = sources_of imp in
  let n = Graph.order g in
  List.iter
    (fun parts ->
      let partition = Core.Coalition.partition_by_ranges ~n ~parts in
      let reference = Core.Coalition.run Core.Connectivity_parts.decide g ~parts:partition in
      List.iter
        (fun (bname, src) ->
          transcript_eq
            (Printf.sprintf "coalition/%s/parts=%d" bname parts)
            reference
            (Core.Coalition.run_source Core.Connectivity_parts.decide src ~parts:partition))
        sources)
    [ 1; 4; 7 ]

(* ---------- [src=] decorations under the bound audit ---------- *)

let test_src_label_audit () =
  let budgeted l =
    match Core.Bound_audit.classify_label l with
    | Core.Bound_audit.Budgeted b -> Some b
    | _ -> None
  in
  (* The decoration is budget-transparent: the decorated label carries
     exactly the bare label's budget. *)
  List.iter
    (fun (bare, decorated) ->
      match (budgeted bare, budgeted decorated) with
      | Some b, Some b' ->
        Alcotest.(check bool) (decorated ^ ": same budget") true (b = b')
      | _ -> Alcotest.failf "%s / %s: expected both budgeted" bare decorated)
    [
      ("forest-recognize", "forest-recognize[src=csr]");
      ("forest-reconstruct", "forest-reconstruct[src=implicit:path]");
      ("coalition-connectivity[parts=4]", "coalition-connectivity[parts=4][src=materialized]");
      ("degeneracy-3-reconstruct", "degeneracy-3-reconstruct[src=implicit:degenerate]");
    ];
  (* Exempt stems stay exempt under decoration; the lint's sprintf
     instantiation "%s[src=%s]" -> "[src=]" must classify, not trip. *)
  List.iter
    (fun l ->
      match Core.Bound_audit.classify_label l with
      | Core.Bound_audit.Exempt -> ()
      | Core.Bound_audit.Budgeted _ -> Alcotest.failf "%s: expected Exempt, got Budgeted" l
      | Core.Bound_audit.Malformed r -> Alcotest.failf "%s: expected Exempt, got Malformed %s" l r)
    [ "[src=]"; "square-oracle[src=csr]"; "forest-reconstruct+sealed[src=implicit:path]" ];
  (* Near-miss decorations must be caught, not silently skipped. *)
  List.iter
    (fun l ->
      match Core.Bound_audit.classify_label l with
      | Core.Bound_audit.Malformed _ -> ()
      | _ -> Alcotest.failf "%s: expected Malformed" l)
    [
      "forest-recognize[src=csr]x";
      "forest-recognize[src=CSR]";
      "forest-recognize[src=csr][parts=4]";
      "forest-recognize[src=a b]";
    ]

let () =
  Alcotest.run "graph_source"
    [
      ( "implicit",
        [
          Alcotest.test_case "materialized twins" `Quick test_implicit_twins;
          Alcotest.test_case "oracles vs twins" `Quick test_implicit_oracles;
          Alcotest.test_case "regular family" `Quick test_regular_family;
          Alcotest.test_case "degenerate family" `Quick test_degenerate_family;
          Alcotest.test_case "parse errors" `Quick test_implicit_parse_errors;
          Alcotest.test_case "parse_family sizes" `Quick test_parse_family_sizes;
        ] );
      ( "csr",
        [
          Alcotest.test_case "of_graph roundtrip" `Quick test_csr_of_graph_roundtrip;
          Alcotest.test_case "of_edges dedupe + errors" `Quick test_csr_of_edges;
        ] );
      ( "source",
        [
          Alcotest.test_case "parse" `Quick test_source_parse;
          Alcotest.test_case "query agreement" `Quick test_source_queries_agree;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "run_source across backends" `Quick test_run_source_equivalence;
          Alcotest.test_case "run_faulty_source clean channel" `Quick
            test_run_faulty_source_clean_channel;
          Alcotest.test_case "coalition run_source" `Quick test_coalition_run_source_equivalence;
        ] );
      ( "labels",
        [ Alcotest.test_case "[src=] under the audit" `Quick test_src_label_audit ] );
    ]
