(* The lint fixture corpus: every rule has a bad twin that must fire
   (and fire only that rule) and a good twin that must stay silent —
   including the deep call-graph rules, whose twins run through
   [Driver.deep_sources] so the harness can place them at
   policy-relevant paths.  Also freezes the suppression semantics, the
   --json schema (v2) and the baseline diff. *)

let fixture name = Filename.concat "lint_fixtures" name

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let rule_names findings =
  List.map (fun f -> Lint.Finding.rule_name f.Lint.Finding.rule) findings

(* [bad fixture rule n] checks the fixture yields exactly [n] findings,
   all of [rule]. *)
let bad name rule n () =
  let findings = Lint.Driver.lint_file (fixture name) in
  Alcotest.(check (list string))
    (name ^ " fires exactly its rule")
    (List.init n (fun _ -> rule))
    (rule_names findings)

let good name () =
  let findings = Lint.Driver.lint_file (fixture name) in
  Alcotest.(check (list string)) (name ^ " is clean") [] (rule_names findings)

(* ---------- suppressions ---------- *)

let suppressed_file_is_clean () = good "suppressed.ml" ()

let unknown_rule_is_reported () =
  match Lint.Driver.lint_file (fixture "bad_suppression.ml") with
  | [ f ] ->
    Alcotest.(check string) "rule" "parse-error" (Lint.Finding.rule_name f.Lint.Finding.rule);
    Alcotest.(check bool)
      "message names the bogus rule" true
      (contains f.Lint.Finding.message {|"no-such-rule"|})
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let suppression_is_rule_specific () =
  (* An allow for the wrong rule must not silence the finding. *)
  let source = "let pick n = Random.int n (* lint: allow referee-totality -- wrong rule *)\n" in
  let findings = Lint.Driver.lint_source ~file:"wrong_rule.ml" source in
  Alcotest.(check (list string)) "still fires" [ "determinism" ] (rule_names findings)

(* ---------- path-gated allowlists ---------- *)

(* The same source fires or stays silent purely by where it claims to
   live: syscalls and clock reads are policy exceptions for the serve
   transport, not repo-wide permissions. *)
let socket_rule_is_path_gated () =
  let source = "let fd () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n" in
  Alcotest.(check (list string))
    "fires outside the transport" [ "determinism" ]
    (rule_names (Lint.Driver.lint_source ~file:"lib/core/rogue.ml" source));
  Alcotest.(check (list string))
    "allowed in the serve daemon" []
    (rule_names (Lint.Driver.lint_source ~file:"lib/serve/daemon.ml" source));
  Alcotest.(check (list string))
    "allowed in the serve client" []
    (rule_names (Lint.Driver.lint_source ~file:"lib/serve/client.ml" source));
  (* The serve *engine* may read the (injectable) clock but still may
     not issue syscalls: transport-free means transport-free. *)
  Alcotest.(check (list string))
    "engine may not open sockets" [ "determinism" ]
    (rule_names (Lint.Driver.lint_source ~file:"lib/serve/engine.ml" source))

let clock_rule_covers_serve_edges () =
  let source = "let now () = Unix.gettimeofday ()\n" in
  Alcotest.(check (list string))
    "fires in core" [ "determinism" ]
    (rule_names (Lint.Driver.lint_source ~file:"lib/core/rogue.ml" source));
  List.iter
    (fun file ->
      Alcotest.(check (list string))
        (file ^ " may read the clock")
        []
        (rule_names (Lint.Driver.lint_source ~file source)))
    [ "lib/serve/engine.ml"; "lib/serve/daemon.ml"; "lib/serve/selftest.ml" ]

(* ---------- malformed input ---------- *)

let parse_error_is_a_finding () =
  match Lint.Driver.lint_file (fixture "bad_parse.ml") with
  | [ f ] -> Alcotest.(check string) "rule" "parse-error" (Lint.Finding.rule_name f.Lint.Finding.rule)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let unreadable_file_is_a_finding () =
  match Lint.Driver.lint_file (fixture "does_not_exist.ml") with
  | [ f ] -> Alcotest.(check string) "rule" "parse-error" (Lint.Finding.rule_name f.Lint.Finding.rule)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* ---------- deep fixtures (call-graph rules) ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run one fixture through the deep pass under a chosen path, so the
   path-gated policies (blocking roots, poll points, unix allowlists)
   see what they would see in the real tree. *)
let deep_fixture ?(as_path = "lib/core/fixture.ml") name =
  Lint.Driver.deep_sources [ (as_path, read_file (fixture name)) ]

let deep_rules d = rule_names d.Lint.Driver.deep_findings

let deep_exn_escape_fires () =
  let d = deep_fixture "deep_bad_exn_escape.ml" in
  Alcotest.(check (list string)) "exactly one escape" [ "exn-escape" ] (deep_rules d);
  Alcotest.(check int) "two of three roots proven" 2 d.Lint.Driver.deep_roots_proven;
  Alcotest.(check int) "three referee roots" 3 d.Lint.Driver.deep_roots_total;
  let f = List.hd d.Lint.Driver.deep_findings in
  Alcotest.(check int) "trace walks the three-call chain" 3 (List.length f.Lint.Finding.trace);
  let last = List.nth f.Lint.Finding.trace 2 in
  Alcotest.(check bool)
    "witness ends at the raise site" true
    (contains last.Lint.Finding.s_note "raise Overflow")

let deep_exn_absorbed_is_clean () =
  let d = deep_fixture "deep_good_exn_absorbed.ml" in
  Alcotest.(check (list string)) "clean" [] (deep_rules d);
  Alcotest.(check int) "all roots proven" 3 d.Lint.Driver.deep_roots_proven;
  Alcotest.(check int) "three referee roots" 3 d.Lint.Driver.deep_roots_total

let deep_race_fires () =
  let d = deep_fixture "deep_bad_parallel_race.ml" in
  Alcotest.(check (list string))
    "both unpartitioned writes flagged"
    [ "parallel-race"; "parallel-race" ]
    (deep_rules d);
  List.iter
    (fun f ->
      Alcotest.(check int)
        "trace: submission + write" 2
        (List.length f.Lint.Finding.trace))
    d.Lint.Driver.deep_findings

let deep_race_indexed_is_clean () =
  Alcotest.(check (list string))
    "item-indexed writes are clean" []
    (deep_rules (deep_fixture "deep_good_parallel_race.ml"))

let deep_blocking_fires () =
  let d = deep_fixture ~as_path:"lib/serve/daemon.ml" "deep_bad_blocking.ml" in
  Alcotest.(check (list string))
    "tier A + tier B"
    [ "blocking-call"; "blocking-call" ]
    (deep_rules d);
  match d.Lint.Driver.deep_findings with
  | [ a; b ] ->
    Alcotest.(check bool) "sleepf named" true (contains a.Lint.Finding.message "Unix.sleepf");
    Alcotest.(check bool) "read named" true (contains b.Lint.Finding.message "Unix.read")
  | _ -> Alcotest.fail "unreachable: two findings checked above"

let deep_blocking_poll_point_is_clean () =
  Alcotest.(check (list string))
    "descriptor I/O at the poll point is clean" []
    (deep_rules (deep_fixture ~as_path:"lib/serve/daemon.ml" "deep_good_blocking.ml"))

let deep_blocking_is_root_gated () =
  (* The same syscalls outside the serve daemon are not reachable from
     any blocking root, so only the shallow determinism rule speaks. *)
  let rules = deep_rules (deep_fixture ~as_path:"lib/core/worker.ml" "deep_bad_blocking.ml") in
  Alcotest.(check bool) "no blocking-call without the serve root" false
    (List.mem "blocking-call" rules)

let deep_paths_reads_files () =
  let d = Lint.Driver.deep_paths [ fixture "deep_bad_exn_escape.ml" ] in
  Alcotest.(check (list string)) "same engine over files" [ "exn-escape" ] (deep_rules d);
  Alcotest.(check int) "scanned one file" 1 (List.length d.Lint.Driver.deep_files)

let deep_trace_step_suppression () =
  (* A deep finding is suppressed by a comment at any trace step, so
     the justification lives at the raise site — and a justified
     suppression still counts as a proof obligation reviewed, so the
     root stays proven. *)
  let source =
    "exception Overflow\n\
     let bump n =\n\
    \  (* lint: allow exn-escape -- fixture justifies at the raise site *)\n\
    \  if n > 7 then raise Overflow else n + 1\n\
     let protocol () =\n\
    \  Protocol.streaming ~init:(fun _ -> 0)\n\
    \    ~absorb:(fun acc v -> bump acc + v)\n\
    \    ~finish:(fun acc -> acc)\n"
  in
  let d = Lint.Driver.deep_sources [ ("lib/core/t.ml", source) ] in
  Alcotest.(check (list string)) "suppressed at the trace step" [] (deep_rules d);
  Alcotest.(check int) "justified roots count as proven" 3 d.Lint.Driver.deep_roots_proven

(* ---------- stale suppressions (deep only) ---------- *)

let stale_suppression_is_reported () =
  let source = "let unused = 1 (* lint: allow determinism -- nothing here *)\n" in
  let d = Lint.Driver.deep_sources [ ("lib/core/t.ml", source) ] in
  Alcotest.(check (list string)) "dead allow flagged" [ "stale-suppression" ] (deep_rules d)

let stale_suppression_has_its_own_allow () =
  let source =
    "(* lint: allow stale-suppression -- kept deliberately *)\n\
     let unused = 1 (* lint: allow determinism -- nothing here *)\n"
  in
  Alcotest.(check (list string)) "justified dead allow is clean" []
    (deep_rules (Lint.Driver.deep_sources [ ("lib/core/t.ml", source) ]))

let used_suppression_is_not_stale () =
  let source = "let r = Random.bits () (* lint: allow determinism -- fixture *)\n" in
  Alcotest.(check (list string)) "live allow is clean" []
    (deep_rules (Lint.Driver.deep_sources [ ("lib/core/t.ml", source) ]))

let shallow_pass_ignores_staleness () =
  (* Shallow CI runs on subsets of the tree, where an allow may be
     legitimately unused; only the whole-repo deep pass judges it. *)
  let source = "let unused = 1 (* lint: allow determinism -- nothing here *)\n" in
  Alcotest.(check (list string)) "shallow stays quiet" []
    (rule_names (Lint.Driver.lint_source ~file:"lib/core/t.ml" source))

(* ---------- JSON schema (frozen, v2) ---------- *)

let json_empty_report () =
  Alcotest.(check string) "empty" {|{"findings":[],"version":2}|} (Lint.Finding.report_json [])

let json_schema_is_stable () =
  let f =
    {
      Lint.Finding.rule = Lint.Finding.Bit_accounting;
      file = "lib/x.ml";
      line = 3;
      col = 7;
      message = {|raw "bytes"|};
      trace = [];
    }
  in
  Alcotest.(check string) "one finding"
    {|{"findings":[{"col":7,"file":"lib/x.ml","line":3,"message":"raw \"bytes\"","rule":"bit-accounting","trace":[]}],"version":2}|}
    (Lint.Finding.report_json [ f ])

let json_trace_is_stable () =
  let f =
    {
      Lint.Finding.rule = Lint.Finding.Exn_escape;
      file = "lib/a.ml";
      line = 3;
      col = 2;
      message = "boom";
      trace =
        [ { Lint.Finding.s_file = "lib/a.ml"; s_line = 9; s_fn = "A.f"; s_note = "raise Overflow" } ];
    }
  in
  Alcotest.(check string) "trace array"
    {|{"findings":[{"col":2,"file":"lib/a.ml","line":3,"message":"boom","rule":"exn-escape","trace":[{"file":"lib/a.ml","fn":"A.f","line":9,"note":"raise Overflow"}]}],"version":2}|}
    (Lint.Finding.report_json [ f ])

let json_meta_fields_are_stable () =
  Alcotest.(check string) "wall_ms and files"
    {|{"findings":[],"version":2,"wall_ms":5,"files":2}|}
    (Lint.Finding.report_json ~wall_ms:5 ~files:2 [])

let findings_are_sorted () =
  let _, findings = Lint.Driver.lint_paths [ "lint_fixtures" ] in
  Alcotest.(check bool) "non-empty" true (findings <> []);
  Alcotest.(check bool) "sorted" true
    (List.sort Lint.Finding.compare findings = findings)

(* ---------- baseline diff ---------- *)

let mk_finding ?(line = 3) ?(message = "boom") () =
  {
    Lint.Finding.rule = Lint.Finding.Exn_escape;
    file = "lib/a.ml";
    line;
    col = 2;
    message;
    trace = [];
  }

let baseline_round_trip () =
  let f = mk_finding () in
  let g = mk_finding ~line:9 ~message:"other" () in
  let report = Lint.Finding.report_json [ f; g ] in
  match Lint.Baseline.of_report report with
  | Error e -> Alcotest.failf "of_report: %s" e
  | Ok base ->
    Alcotest.(check int) "self-diff is empty" 0
      (List.length (Lint.Baseline.diff ~baseline:base [ f; g ]));
    Alcotest.(check int) "line shifts do not trip the gate" 0
      (List.length (Lint.Baseline.diff ~baseline:base [ mk_finding ~line:99 (); g ]));
    Alcotest.(check int) "a second copy of a known finding is new" 1
      (List.length
         (Lint.Baseline.diff ~baseline:base [ f; mk_finding ~line:50 (); g ]));
    Alcotest.(check int) "empty baseline keeps everything" 2
      (List.length (Lint.Baseline.diff ~baseline:[] [ f; g ]))

let baseline_unreadable_is_an_error () =
  match Lint.Baseline.load (fixture "no_such_baseline.json") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on a missing baseline"

let baseline_malformed_is_an_error () =
  List.iter
    (fun doc ->
      match Lint.Baseline.of_report doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected Error on %s" doc)
    [ {|{"findings": 3}|}; {|[1, 2|}; {|{"version": 2}|}; "" ]

(* ---------- label grammar round-trip ---------- *)

let classify label = Core.Bound_audit.classify_label label

let label_grammar () =
  let budgeted l =
    match classify l with
    | Core.Bound_audit.Budgeted _ -> ()
    | _ -> Alcotest.failf "%S should be budgeted" l
  in
  let exempt l =
    match classify l with
    | Core.Bound_audit.Exempt -> ()
    | _ -> Alcotest.failf "%S should be exempt" l
  in
  let malformed l =
    match classify l with
    | Core.Bound_audit.Malformed _ -> ()
    | _ -> Alcotest.failf "%S should be malformed" l
  in
  List.iter budgeted
    [
      "forest-reconstruct";
      "degeneracy-3-reconstruct";
      "degeneracy-2-reconstruct-compact";
      "generalized-degeneracy-4-reconstruct";
      "bounded-degree-5";
      "coalition-connectivity[parts=2]";
      "sketch-connectivity(seed=7)";
      "full-information";
      "bcc-connectivity-4";
      "bcc-connectivity-4[round=2]";
      "bcc-connectivity-4[round=3][src=implicit:cycle]";
      "forest-reconstruct[round=1]";
    ];
  List.iter exempt
    [
      "my-experimental-protocol";
      "forest-reconstruct+hardened";
      "bounded-degree-3+sealed";
      "coalition-connectivity";
      "bcc-adaptive-degeneracy";
      "bcc-connectivity-2+hardened[round=2]";
    ];
  List.iter malformed
    [
      "";
      "degeneracy-reconstruct";
      "bounded-degree-";
      "forest-rebuild";
      "coalition-connectivity[parts=0]";
      "forest-reconstruct[parts=2]";
      "degeneracy-3-reconstruct+glittered";
      "bcc-connectivity-";
      "bcc-frontier";
      "[round=0]";
      "bcc-connectivity-4[round=0]";
      "bcc-connectivity-4[src=csr][round=2]";
    ]

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "bad view-boundary" `Quick
            (bad "bad_view_boundary.ml" "view-boundary" 4);
          Alcotest.test_case "good view-boundary" `Quick (good "good_view_boundary.ml");
          Alcotest.test_case "bad determinism" `Quick (bad "bad_determinism.ml" "determinism" 4);
          Alcotest.test_case "good determinism" `Quick (good "good_determinism.ml");
          Alcotest.test_case "bad referee-totality" `Quick
            (bad "bad_referee_totality.ml" "referee-totality" 3);
          Alcotest.test_case "good referee-totality" `Quick (good "good_referee_totality.ml");
          Alcotest.test_case "bad span-grammar" `Quick (bad "bad_span_grammar.ml" "span-grammar" 3);
          Alcotest.test_case "good span-grammar" `Quick (good "good_span_grammar.ml");
          Alcotest.test_case "bad bit-accounting" `Quick
            (bad "bad_bit_accounting.ml" "bit-accounting" 2);
          Alcotest.test_case "good bit-accounting" `Quick (good "good_bit_accounting.ml");
          Alcotest.test_case "bad unix socket" `Quick (bad "bad_unix_socket.ml" "determinism" 3);
          Alcotest.test_case "good unix socket" `Quick (good "good_unix_socket.ml");
        ] );
      ( "deep fixtures",
        [
          Alcotest.test_case "bad exn-escape" `Quick deep_exn_escape_fires;
          Alcotest.test_case "good exn-escape (absorbed)" `Quick deep_exn_absorbed_is_clean;
          Alcotest.test_case "bad parallel-race" `Quick deep_race_fires;
          Alcotest.test_case "good parallel-race (indexed)" `Quick deep_race_indexed_is_clean;
          Alcotest.test_case "bad blocking-call" `Quick deep_blocking_fires;
          Alcotest.test_case "good blocking-call (poll point)" `Quick
            deep_blocking_poll_point_is_clean;
          Alcotest.test_case "blocking root is path-gated" `Quick deep_blocking_is_root_gated;
          Alcotest.test_case "deep_paths reads files" `Quick deep_paths_reads_files;
          Alcotest.test_case "suppression covers trace steps" `Quick deep_trace_step_suppression;
        ] );
      ( "policy gating",
        [
          Alcotest.test_case "syscalls confined to transport" `Quick socket_rule_is_path_gated;
          Alcotest.test_case "clock reads at serve edges" `Quick clock_rule_covers_serve_edges;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "both forms silence" `Quick suppressed_file_is_clean;
          Alcotest.test_case "unknown rule is reported" `Quick unknown_rule_is_reported;
          Alcotest.test_case "rule-specific" `Quick suppression_is_rule_specific;
          Alcotest.test_case "stale allow is reported (deep)" `Quick stale_suppression_is_reported;
          Alcotest.test_case "stale allow has its own allow" `Quick
            stale_suppression_has_its_own_allow;
          Alcotest.test_case "used allow is not stale" `Quick used_suppression_is_not_stale;
          Alcotest.test_case "shallow ignores staleness" `Quick shallow_pass_ignores_staleness;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "parse error is a finding" `Quick parse_error_is_a_finding;
          Alcotest.test_case "unreadable file is a finding" `Quick unreadable_file_is_a_finding;
        ] );
      ( "report",
        [
          Alcotest.test_case "empty JSON report" `Quick json_empty_report;
          Alcotest.test_case "JSON schema frozen" `Quick json_schema_is_stable;
          Alcotest.test_case "JSON trace frozen" `Quick json_trace_is_stable;
          Alcotest.test_case "JSON meta fields frozen" `Quick json_meta_fields_are_stable;
          Alcotest.test_case "findings sorted" `Quick findings_are_sorted;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round trip" `Quick baseline_round_trip;
          Alcotest.test_case "unreadable is an error" `Quick baseline_unreadable_is_an_error;
          Alcotest.test_case "malformed is an error" `Quick baseline_malformed_is_an_error;
        ] );
      ("labels", [ Alcotest.test_case "classify_label" `Quick label_grammar ]);
    ]
