(* The lint fixture corpus: every rule has a bad twin that must fire
   (and fire only that rule) and a good twin that must stay silent.
   Also freezes the suppression semantics and the --json schema. *)

let fixture name = Filename.concat "lint_fixtures" name

let contains s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let rule_names findings =
  List.map (fun f -> Lint.Finding.rule_name f.Lint.Finding.rule) findings

(* [bad fixture rule n] checks the fixture yields exactly [n] findings,
   all of [rule]. *)
let bad name rule n () =
  let findings = Lint.Driver.lint_file (fixture name) in
  Alcotest.(check (list string))
    (name ^ " fires exactly its rule")
    (List.init n (fun _ -> rule))
    (rule_names findings)

let good name () =
  let findings = Lint.Driver.lint_file (fixture name) in
  Alcotest.(check (list string)) (name ^ " is clean") [] (rule_names findings)

(* ---------- suppressions ---------- *)

let suppressed_file_is_clean () = good "suppressed.ml" ()

let unknown_rule_is_reported () =
  match Lint.Driver.lint_file (fixture "bad_suppression.ml") with
  | [ f ] ->
    Alcotest.(check string) "rule" "parse-error" (Lint.Finding.rule_name f.Lint.Finding.rule);
    Alcotest.(check bool)
      "message names the bogus rule" true
      (contains f.Lint.Finding.message {|"no-such-rule"|})
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let suppression_is_rule_specific () =
  (* An allow for the wrong rule must not silence the finding. *)
  let source = "let pick n = Random.int n (* lint: allow referee-totality -- wrong rule *)\n" in
  let findings = Lint.Driver.lint_source ~file:"wrong_rule.ml" source in
  Alcotest.(check (list string)) "still fires" [ "determinism" ] (rule_names findings)

(* ---------- path-gated allowlists ---------- *)

(* The same source fires or stays silent purely by where it claims to
   live: syscalls and clock reads are policy exceptions for the serve
   transport, not repo-wide permissions. *)
let socket_rule_is_path_gated () =
  let source = "let fd () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n" in
  Alcotest.(check (list string))
    "fires outside the transport" [ "determinism" ]
    (rule_names (Lint.Driver.lint_source ~file:"lib/core/rogue.ml" source));
  Alcotest.(check (list string))
    "allowed in the serve daemon" []
    (rule_names (Lint.Driver.lint_source ~file:"lib/serve/daemon.ml" source));
  Alcotest.(check (list string))
    "allowed in the serve client" []
    (rule_names (Lint.Driver.lint_source ~file:"lib/serve/client.ml" source));
  (* The serve *engine* may read the (injectable) clock but still may
     not issue syscalls: transport-free means transport-free. *)
  Alcotest.(check (list string))
    "engine may not open sockets" [ "determinism" ]
    (rule_names (Lint.Driver.lint_source ~file:"lib/serve/engine.ml" source))

let clock_rule_covers_serve_edges () =
  let source = "let now () = Unix.gettimeofday ()\n" in
  Alcotest.(check (list string))
    "fires in core" [ "determinism" ]
    (rule_names (Lint.Driver.lint_source ~file:"lib/core/rogue.ml" source));
  List.iter
    (fun file ->
      Alcotest.(check (list string))
        (file ^ " may read the clock")
        []
        (rule_names (Lint.Driver.lint_source ~file source)))
    [ "lib/serve/engine.ml"; "lib/serve/daemon.ml"; "lib/serve/selftest.ml" ]

(* ---------- malformed input ---------- *)

let parse_error_is_a_finding () =
  match Lint.Driver.lint_file (fixture "bad_parse.ml") with
  | [ f ] -> Alcotest.(check string) "rule" "parse-error" (Lint.Finding.rule_name f.Lint.Finding.rule)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let unreadable_file_is_a_finding () =
  match Lint.Driver.lint_file (fixture "does_not_exist.ml") with
  | [ f ] -> Alcotest.(check string) "rule" "parse-error" (Lint.Finding.rule_name f.Lint.Finding.rule)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* ---------- JSON schema (frozen) ---------- *)

let json_empty_report () =
  Alcotest.(check string) "empty" {|{"findings":[],"version":1}|} (Lint.Finding.report_json [])

let json_schema_is_stable () =
  let f =
    {
      Lint.Finding.rule = Lint.Finding.Bit_accounting;
      file = "lib/x.ml";
      line = 3;
      col = 7;
      message = {|raw "bytes"|};
    }
  in
  Alcotest.(check string) "one finding"
    {|{"findings":[{"col":7,"file":"lib/x.ml","line":3,"message":"raw \"bytes\"","rule":"bit-accounting"}],"version":1}|}
    (Lint.Finding.report_json [ f ])

let findings_are_sorted () =
  let _, findings = Lint.Driver.lint_paths [ "lint_fixtures" ] in
  Alcotest.(check bool) "non-empty" true (findings <> []);
  Alcotest.(check bool) "sorted" true
    (List.sort Lint.Finding.compare findings = findings)

(* ---------- label grammar round-trip ---------- *)

let classify label = Core.Bound_audit.classify_label label

let label_grammar () =
  let budgeted l =
    match classify l with
    | Core.Bound_audit.Budgeted _ -> ()
    | _ -> Alcotest.failf "%S should be budgeted" l
  in
  let exempt l =
    match classify l with
    | Core.Bound_audit.Exempt -> ()
    | _ -> Alcotest.failf "%S should be exempt" l
  in
  let malformed l =
    match classify l with
    | Core.Bound_audit.Malformed _ -> ()
    | _ -> Alcotest.failf "%S should be malformed" l
  in
  List.iter budgeted
    [
      "forest-reconstruct";
      "degeneracy-3-reconstruct";
      "degeneracy-2-reconstruct-compact";
      "generalized-degeneracy-4-reconstruct";
      "bounded-degree-5";
      "coalition-connectivity[parts=2]";
      "sketch-connectivity(seed=7)";
      "full-information";
      "bcc-connectivity-4";
      "bcc-connectivity-4[round=2]";
      "bcc-connectivity-4[round=3][src=implicit:cycle]";
      "forest-reconstruct[round=1]";
    ];
  List.iter exempt
    [
      "my-experimental-protocol";
      "forest-reconstruct+hardened";
      "bounded-degree-3+sealed";
      "coalition-connectivity";
      "bcc-adaptive-degeneracy";
      "bcc-connectivity-2+hardened[round=2]";
    ];
  List.iter malformed
    [
      "";
      "degeneracy-reconstruct";
      "bounded-degree-";
      "forest-rebuild";
      "coalition-connectivity[parts=0]";
      "forest-reconstruct[parts=2]";
      "degeneracy-3-reconstruct+glittered";
      "bcc-connectivity-";
      "bcc-frontier";
      "[round=0]";
      "bcc-connectivity-4[round=0]";
      "bcc-connectivity-4[src=csr][round=2]";
    ]

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "bad view-boundary" `Quick
            (bad "bad_view_boundary.ml" "view-boundary" 4);
          Alcotest.test_case "good view-boundary" `Quick (good "good_view_boundary.ml");
          Alcotest.test_case "bad determinism" `Quick (bad "bad_determinism.ml" "determinism" 4);
          Alcotest.test_case "good determinism" `Quick (good "good_determinism.ml");
          Alcotest.test_case "bad referee-totality" `Quick
            (bad "bad_referee_totality.ml" "referee-totality" 3);
          Alcotest.test_case "good referee-totality" `Quick (good "good_referee_totality.ml");
          Alcotest.test_case "bad span-grammar" `Quick (bad "bad_span_grammar.ml" "span-grammar" 3);
          Alcotest.test_case "good span-grammar" `Quick (good "good_span_grammar.ml");
          Alcotest.test_case "bad bit-accounting" `Quick
            (bad "bad_bit_accounting.ml" "bit-accounting" 2);
          Alcotest.test_case "good bit-accounting" `Quick (good "good_bit_accounting.ml");
          Alcotest.test_case "bad unix socket" `Quick (bad "bad_unix_socket.ml" "determinism" 3);
          Alcotest.test_case "good unix socket" `Quick (good "good_unix_socket.ml");
        ] );
      ( "policy gating",
        [
          Alcotest.test_case "syscalls confined to transport" `Quick socket_rule_is_path_gated;
          Alcotest.test_case "clock reads at serve edges" `Quick clock_rule_covers_serve_edges;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "both forms silence" `Quick suppressed_file_is_clean;
          Alcotest.test_case "unknown rule is reported" `Quick unknown_rule_is_reported;
          Alcotest.test_case "rule-specific" `Quick suppression_is_rule_specific;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "parse error is a finding" `Quick parse_error_is_a_finding;
          Alcotest.test_case "unreadable file is a finding" `Quick unreadable_file_is_a_finding;
        ] );
      ( "report",
        [
          Alcotest.test_case "empty JSON report" `Quick json_empty_report;
          Alcotest.test_case "JSON schema frozen" `Quick json_schema_is_stable;
          Alcotest.test_case "findings sorted" `Quick findings_are_sorted;
        ] );
      ("labels", [ Alcotest.test_case "classify_label" `Quick label_grammar ]);
    ]
