(* Metrics registry, bound audits and the offline report pipeline.

   The load-bearing contracts: log₂ bucket boundaries sit at exact
   powers of two, counters saturate instead of wrapping, snapshots of a
   deterministic run are byte-identical at every Parallel width, and
   [refnet report]'s offline aggregation of a JSONL trace reproduces the
   live aggregates byte-for-byte. *)

open Refnet_graph

(* ---------- histogram buckets ---------- *)

let test_bucket_boundaries () =
  let idx = Core.Metrics.Histogram.bucket_index in
  Alcotest.(check int) "0 -> bucket 0" 0 (idx 0);
  Alcotest.(check int) "1 -> bucket 1" 1 (idx 1);
  for i = 1 to 40 do
    (* A power of two starts a fresh bucket; one below it closes the
       previous bucket. *)
    Alcotest.(check int)
      (Printf.sprintf "2^%d starts bucket %d" i (i + 1))
      (i + 1)
      (idx (1 lsl i));
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1 closes bucket %d" i i)
      i
      (idx ((1 lsl i) - 1))
  done;
  Alcotest.(check int) "max_int bucket" 62 (idx max_int)

let test_bucket_range_roundtrip () =
  for i = 0 to 62 do
    let lo, hi = Core.Metrics.Histogram.bucket_range i in
    Alcotest.(check int) "lo lands in bucket i" i (Core.Metrics.Histogram.bucket_index lo);
    Alcotest.(check int) "hi lands in bucket i" i (Core.Metrics.Histogram.bucket_index hi);
    if i = 0 then Alcotest.(check (pair int int)) "bucket 0 = {0}" (0, 0) (lo, hi)
    else Alcotest.(check int) "lo = 2^(i-1)" (1 lsl (i - 1)) lo
  done

let test_histogram_observe () =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  let h = Core.Metrics.Histogram.histogram m "h" in
  List.iter (Core.Metrics.Histogram.observe h) [ 0; 1; 1; 3; 4; 7; 8 ];
  Alcotest.(check int) "count" 7 (Core.Metrics.Histogram.count h);
  Alcotest.(check int) "sum" 24 (Core.Metrics.Histogram.sum h);
  Alcotest.(check int) "max" 8 (Core.Metrics.Histogram.max_value h);
  Alcotest.(check (list (pair int int)))
    "buckets" [ (0, 1); (1, 2); (2, 1); (3, 2); (4, 1) ]
    (Core.Metrics.Histogram.buckets h);
  Alcotest.check_raises "negative observation"
    (Invalid_argument "Metrics.Histogram.observe: negative value") (fun () ->
      Core.Metrics.Histogram.observe h (-1))

let test_histogram_quantiles () =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  let h = Core.Metrics.Histogram.histogram m "h" in
  Alcotest.(check int) "empty histogram quantile" 0 (Core.Metrics.Histogram.quantile h 0.5);
  (* 100 observations of value 1..100: the log₂ buckets bound each
     quantile by its bucket's upper edge, and p100 is the exact max *)
  for v = 1 to 100 do
    Core.Metrics.Histogram.observe h v
  done;
  let q p = Core.Metrics.Histogram.quantile h p in
  Alcotest.(check int) "p50 in (32..63] bucket" 63 (q 0.5);
  Alcotest.(check int) "p90 clamped to observed max" 100 (q 0.9);
  Alcotest.(check int) "p99 capped at observed max" 100 (q 0.99);
  Alcotest.(check int) "p0 clamps to smallest bucket edge" 1 (q 0.0);
  Alcotest.(check int) "q>1 clamps to max" 100 (q 2.0);
  Alcotest.(check int) "q<0 clamps like q=0" (q 0.0) (q (-1.0));
  (* monotone in q *)
  let prev = ref 0 in
  List.iter
    (fun p ->
      let v = q p in
      if v < !prev then Alcotest.failf "quantile not monotone at %g" p;
      prev := v)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
  (* snapshot agrees with the live accessor *)
  let s = Core.Metrics.snapshot m in
  match List.assoc_opt "h" s.Core.Metrics.histograms with
  | Some hs ->
    List.iter
      (fun p ->
        Alcotest.(check int)
          (Printf.sprintf "snapshot quantile %g" p)
          (q p)
          (Core.Metrics.snapshot_quantile hs p))
      [ 0.5; 0.9; 0.99 ]
  | None -> Alcotest.fail "histogram missing from snapshot"

let test_histogram_sum_saturates () =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  let h = Core.Metrics.Histogram.histogram m "h" in
  Core.Metrics.Histogram.observe h max_int;
  Core.Metrics.Histogram.observe h max_int;
  Alcotest.(check int) "sum saturates" max_int (Core.Metrics.Histogram.sum h);
  Alcotest.(check int) "count exact" 2 (Core.Metrics.Histogram.count h)

(* ---------- counters ---------- *)

let test_counter_saturation () =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  let c = Core.Metrics.Counter.counter m "c" in
  Core.Metrics.Counter.add c (max_int - 5);
  Core.Metrics.Counter.add c 10;
  Alcotest.(check int) "saturates at max_int" max_int (Core.Metrics.Counter.value c);
  Core.Metrics.Counter.incr c;
  Alcotest.(check int) "incr stays saturated" max_int (Core.Metrics.Counter.value c);
  Alcotest.check_raises "negative add" (Invalid_argument "Metrics.Counter.add: negative increment")
    (fun () -> Core.Metrics.Counter.add c (-1))

let test_kind_collision () =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  let _ = Core.Metrics.Counter.counter m "x" in
  (* Same name, same kind: fine (same metric). *)
  Core.Metrics.Counter.incr (Core.Metrics.Counter.counter m "x");
  Alcotest.(check int) "same name, same counter" 1
    (Core.Metrics.Counter.value (Core.Metrics.Counter.counter m "x"));
  match Core.Metrics.Histogram.histogram m "x" with
  | (_ : Core.Metrics.Histogram.histogram) ->
    Alcotest.fail "registering \"x\" as a histogram should raise"
  | exception Invalid_argument _ -> ()

(* ---------- timers ---------- *)

let test_timer_spans_and_domains () =
  let ticks = ref [ 1.0; 3.5 ] in
  let clock () =
    match !ticks with
    | t :: rest ->
      ticks := rest;
      t
    | [] -> 100.
  in
  let m = Core.Metrics.create ~clock () in
  let v = Core.Metrics.time m "t" (fun () -> 42) in
  Alcotest.(check int) "time passes the result through" 42 v;
  let tm = Core.Metrics.Timer.timer m "t" in
  Alcotest.(check int) "one span" 1 (Core.Metrics.Timer.count tm);
  Alcotest.(check (float 1e-9)) "elapsed" 2.5 (Core.Metrics.Timer.total tm);
  (* add: no span count, out-of-range domains clamp, negatives clamp. *)
  Core.Metrics.Timer.add tm ~domain:999 1.0;
  Core.Metrics.Timer.add tm ~domain:(-3) 1.0;
  Core.Metrics.Timer.add tm (-5.0);
  Alcotest.(check int) "add does not bump span count" 1 (Core.Metrics.Timer.count tm);
  Alcotest.(check (float 1e-9)) "total accumulates" 4.5 (Core.Metrics.Timer.total tm);
  match Core.Metrics.Timer.by_domain tm with
  | [ (0, a); (63, b) ] ->
    (* Slot 0 holds the span's 2.5 plus the clamped -3 and -5.0 adds. *)
    Alcotest.(check (float 1e-9)) "slot 0" 3.5 a;
    Alcotest.(check (float 1e-9)) "slot 63 (clamped from 999)" 1.0 b
  | l -> Alcotest.failf "unexpected domain table (%d entries)" (List.length l)

(* ---------- snapshot determinism across Parallel widths ---------- *)

let snapshot_json_at_width ~domains g =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  let _ = Core.Simulator.run ~domains ~metrics:m (Core.Degeneracy_protocol.reconstruct ~k:2 ()) g in
  let _ =
    Core.Simulator.run_faulty ~domains ~metrics:m
      ~faults:(Core.Faults.of_list [ (1, Core.Faults.Crash) ])
      Core.Forest_protocol.hardened g
  in
  Core.Metrics.to_json (Core.Metrics.snapshot m)

let test_snapshot_deterministic_across_widths () =
  let g = Generators.gnp (Random.State.make [| 5 |]) 24 0.2 in
  let reference = snapshot_json_at_width ~domains:1 g in
  List.iter
    (fun w ->
      Alcotest.(check string)
        (Printf.sprintf "width %d matches width 1" w)
        reference
        (snapshot_json_at_width ~domains:w g))
    [ 2; 4; 8 ];
  (* Snapshotting is read-only: a second export is byte-identical. *)
  Alcotest.(check string) "snapshot is repeatable" reference (snapshot_json_at_width ~domains:1 g)

let test_exports_shape () =
  let m = Core.Metrics.create ~clock:(fun () -> 0.) () in
  Core.Metrics.Counter.add (Core.Metrics.Counter.counter m "refnet_runs_total") 3;
  let h = Core.Metrics.Histogram.histogram m "refnet_message_bits" in
  List.iter (Core.Metrics.Histogram.observe h) [ 0; 1; 4 ];
  Core.Metrics.Gauge.set (Core.Metrics.Gauge.gauge m "refnet_n") 24.;
  let _ = Core.Metrics.time m "refnet_local_phase" (fun () -> ()) in
  let s = Core.Metrics.snapshot m in
  Alcotest.(check string) "canonical json"
    ("{\"counters\":{\"refnet_runs_total\":3},\"gauges\":{\"refnet_n\":24.0},"
    ^ "\"histograms\":{\"refnet_message_bits\":{\"count\":3,\"sum\":5,\"max\":4,"
    ^ "\"p50\":1,\"p90\":4,\"p99\":4,"
    ^ "\"buckets\":{\"0\":1,\"1\":1,\"3\":1}}},"
    ^ "\"timers\":{\"refnet_local_phase\":{\"count\":1,\"total_seconds\":0.0,\"by_domain\":{}}}}")
    (Core.Metrics.to_json s);
  let prom = Core.Metrics.to_prometheus s in
  let contains sub =
    Alcotest.(check bool) (Printf.sprintf "prometheus has %S" sub) true
      (let n = String.length prom and k = String.length sub in
       let rec go i = i + k <= n && (String.sub prom i k = sub || go (i + 1)) in
       go 0)
  in
  contains "# TYPE refnet_runs_total counter";
  contains "refnet_runs_total 3";
  contains "# TYPE refnet_message_bits histogram";
  contains "refnet_message_bits_bucket{le=\"+Inf\"} 3";
  contains "refnet_message_bits_sum 5";
  contains "refnet_message_bits_count 3";
  contains "refnet_message_bits{quantile=\"0.5\"} 1";
  contains "refnet_message_bits{quantile=\"0.9\"} 4";
  contains "refnet_message_bits{quantile=\"0.99\"} 4";
  contains "# TYPE refnet_local_phase_seconds_total counter";
  contains "refnet_local_phase_spans_total 1"

(* ---------- report: offline JSONL replay = live aggregation ---------- *)

let traced_runs trace =
  let g = Generators.gnp (Random.State.make [| 9 |]) 18 0.25 in
  let tree = Generators.random_tree (Random.State.make [| 10 |]) 18 in
  let _ = Core.Simulator.run ~trace Core.Forest_protocol.reconstruct tree in
  let _ = Core.Simulator.run ~trace (Core.Degeneracy_protocol.reconstruct ~k:3 ()) g in
  let _ =
    Core.Simulator.run_faulty ~trace
      ~faults:(Core.Faults.of_list
                 [ (1, Core.Faults.Crash); (2, Core.Faults.Duplicate); (3, Core.Faults.Flip [ 0 ]) ])
      Core.Forest_protocol.hardened g
  in
  let _ =
    Core.Coalition.run ~trace Core.Connectivity_parts.decide g
      ~parts:(Core.Coalition.partition_by_ranges ~n:18 ~parts:3)
  in
  ()

let test_report_roundtrip () =
  (* One run records events in memory; the same events then reach the
     aggregator by three routes — live sink, re-parsed JSON lines, and a
     JSONL file on disk — and all four reports must render identically. *)
  let sink, events = Core.Trace.memory () in
  let live = Core.Report.create () in
  let both = Core.Trace.make (fun ev ->
      Core.Trace.emit sink ev;
      Core.Report.ingest_event live ev)
  in
  traced_runs both;
  let evs = events () in
  let from_events = Core.Report.create () in
  List.iter (Core.Report.ingest_event from_events) evs;
  let from_lines = Core.Report.create () in
  List.iter
    (fun ev -> Core.Report.ingest_line from_lines (Core.Trace.json_of_event ev))
    evs;
  let path = Filename.temp_file "refnet_report" ".jsonl" in
  let from_file = Core.Report.create () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun ev ->
          output_string oc (Core.Trace.json_of_event ev);
          output_char oc '\n')
        evs;
      close_out oc;
      Core.Report.ingest_file from_file path);
  let reference = Core.Report.to_json live in
  Alcotest.(check string) "replay from events" reference (Core.Report.to_json from_events);
  Alcotest.(check string) "replay from lines" reference (Core.Report.to_json from_lines);
  Alcotest.(check string) "replay from file" reference (Core.Report.to_json from_file);
  Alcotest.(check int) "event count" (List.length evs) (Core.Report.events live);
  (* The faulty run's injections are visible by kind. *)
  let has sub =
    let n = String.length reference and k = String.length sub in
    let rec go i = i + k <= n && (String.sub reference i k = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "fault kinds counted" true
    (has "\"crash\":1" && has "\"duplicate\":1" && has "\"flip\":1")

let test_report_rejects_garbage () =
  let r = Core.Report.create () in
  Core.Report.ingest_line r "";
  Core.Report.ingest_line r "   ";
  Alcotest.(check int) "blank lines ignored" 0 (Core.Report.events r);
  let bad line =
    match Core.Report.ingest_line r line with
    | () -> Alcotest.failf "accepted %S" line
    | exception Failure _ -> ()
  in
  bad "not json";
  bad "{\"event\":\"span_begin\",\"label\":\"x\",\"n\":3} trailing";
  bad "{\"event\":\"mystery\",\"n\":1}"

(* ---------- bound audits ---------- *)

let test_budget_of_label () =
  let shape label =
    match Core.Bound_audit.budget_of_label label with
    | Some b -> Some b.Core.Bound_audit.b_shape
    | None -> None
  in
  Alcotest.(check bool) "forest" true (shape "forest-reconstruct" = Some Core.Bound_audit.Log_n);
  Alcotest.(check bool) "degeneracy k=3" true
    (shape "degeneracy-3-reconstruct" = Some (Core.Bound_audit.K2_log_n 3));
  Alcotest.(check bool) "bounded degree 4" true
    (shape "bounded-degree-4" = Some (Core.Bound_audit.K_log_n 4));
  Alcotest.(check bool) "coalition parts=4" true
    (shape "coalition-connectivity[parts=4]" = Some (Core.Bound_audit.K_log_n 4));
  Alcotest.(check bool) "sketch" true
    (shape "sketch-connectivity(seed=7)" = Some Core.Bound_audit.Log_sq);
  Alcotest.(check bool) "full information" true
    (shape "full-information" = Some Core.Bound_audit.Linear);
  Alcotest.(check bool) "hardened variants excluded" true
    (shape "forest-recognize+hardened" = None);
  Alcotest.(check bool) "sealed variants excluded" true
    (shape "forest-reconstruct+sealed" = None);
  Alcotest.(check bool) "unknown labels excluded" true (shape "delta-square" = None)

let test_shape_units () =
  let w n = Core.Bounds.id_bits n in
  Alcotest.(check int) "Log_n" (w 64) (Core.Bound_audit.shape_units Core.Bound_audit.Log_n 64);
  Alcotest.(check int) "K_log_n" (4 * w 64)
    (Core.Bound_audit.shape_units (Core.Bound_audit.K_log_n 4) 64);
  Alcotest.(check int) "K2_log_n" (9 * w 64)
    (Core.Bound_audit.shape_units (Core.Bound_audit.K2_log_n 3) 64);
  Alcotest.(check int) "Log_sq" (w 64 * w 64)
    (Core.Bound_audit.shape_units Core.Bound_audit.Log_sq 64);
  Alcotest.(check int) "Linear" 64 (Core.Bound_audit.shape_units Core.Bound_audit.Linear 64)

let test_audit_pass_and_fail () =
  let budget = { Core.Bound_audit.b_shape = Core.Bound_audit.Log_n; c_max = 4.0; n_min = 8 } in
  let obs n max_bits = { Core.Bound_audit.o_n = n; o_max_bits = max_bits } in
  (* Within budget: c_fit is the worst audited ratio; n=4 is skipped. *)
  let v =
    Core.Bound_audit.audit ~label:"x" budget
      [ obs 4 1000; obs 16 10; obs 64 21 ]
  in
  Alcotest.(check bool) "passes" true v.Core.Bound_audit.v_passed;
  Alcotest.(check int) "audited" 2 v.Core.Bound_audit.v_observations;
  Alcotest.(check int) "skipped" 1 v.Core.Bound_audit.v_skipped;
  (* id_bits 16 = 5 -> 10/5 = 2.0; id_bits 64 = 7 -> 21/7 = 3.0. *)
  Alcotest.(check (float 1e-9)) "c_fit" 3.0 v.Core.Bound_audit.v_c_fit;
  Alcotest.(check int) "worst n" 64 v.Core.Bound_audit.v_worst_n;
  (* Over budget fails. *)
  let v = Core.Bound_audit.audit ~label:"x" budget [ obs 16 25 ] in
  Alcotest.(check bool) "fails over budget" false v.Core.Bound_audit.v_passed;
  (* Nothing audited (all below n_min): vacuously passes. *)
  let v = Core.Bound_audit.audit ~label:"x" budget [ obs 4 1000 ] in
  Alcotest.(check bool) "vacuous pass" true v.Core.Bound_audit.v_passed;
  Alcotest.(check int) "vacuous worst n" 0 v.Core.Bound_audit.v_worst_n

let test_report_audits_flagships () =
  (* A small sweep through the report pipeline: every flagship protocol
     label is audited and passes its budget. *)
  let r = Core.Report.create () in
  let trace = Core.Report.sink r in
  List.iter
    (fun n ->
      let rng = Random.State.make [| 3; n |] in
      let _ = Core.Simulator.run ~trace Core.Forest_protocol.reconstruct
          (Generators.random_tree rng n)
      in
      let _ = Core.Simulator.run ~trace
          (Core.Degeneracy_protocol.reconstruct ~k:2 ())
          (Generators.gnp rng n 0.15)
      in
      ())
    [ 16; 32; 64 ];
  let verdicts = Core.Report.verdicts r in
  Alcotest.(check int) "two audited labels" 2 (List.length verdicts);
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (v.Core.Bound_audit.v_label ^ " passes")
        true v.Core.Bound_audit.v_passed)
    verdicts;
  Alcotest.(check int) "no violations" 0 (List.length (Core.Report.violations r))

let () =
  Alcotest.run "metrics"
    [
      ( "histograms",
        [
          Alcotest.test_case "bucket boundaries at powers of two" `Quick test_bucket_boundaries;
          Alcotest.test_case "bucket_range round-trips" `Quick test_bucket_range_roundtrip;
          Alcotest.test_case "observe" `Quick test_histogram_observe;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "sum saturates" `Quick test_histogram_sum_saturates;
        ] );
      ( "counters",
        [
          Alcotest.test_case "saturation and guards" `Quick test_counter_saturation;
          Alcotest.test_case "kind collision" `Quick test_kind_collision;
        ] );
      ( "timers", [ Alcotest.test_case "spans and domains" `Quick test_timer_spans_and_domains ] );
      ( "snapshots",
        [
          Alcotest.test_case "deterministic across widths" `Quick
            test_snapshot_deterministic_across_widths;
          Alcotest.test_case "export formats" `Quick test_exports_shape;
        ] );
      ( "report",
        [
          Alcotest.test_case "offline replay equals live" `Quick test_report_roundtrip;
          Alcotest.test_case "rejects malformed lines" `Quick test_report_rejects_garbage;
        ] );
      ( "bound audit",
        [
          Alcotest.test_case "budgets from labels" `Quick test_budget_of_label;
          Alcotest.test_case "shape units" `Quick test_shape_units;
          Alcotest.test_case "pass and fail" `Quick test_audit_pass_and_fail;
          Alcotest.test_case "flagship sweep passes" `Quick test_report_audits_flagships;
        ] );
    ]
