(* Model-layer tests: Message, Nat_codec, Protocol, Simulator, Stats,
   Coalition, Bounds. *)
open Refnet_bits
open Refnet_bigint
open Refnet_graph

let test_message_bits () =
  let w = Bit_writer.create () in
  Codes.write_fixed w ~width:9 300;
  let m = Core.Message.of_writer w in
  Alcotest.(check int) "exact size" 9 (Core.Message.bits m);
  Alcotest.(check int) "empty" 0 (Core.Message.bits Core.Message.empty)

let test_message_concat () =
  let mk v =
    let w = Bit_writer.create () in
    Codes.write_fixed w ~width:4 v;
    Core.Message.of_writer w
  in
  let m = Core.Message.concat [ mk 5; mk 9 ] in
  Alcotest.(check int) "size adds" 8 (Core.Message.bits m);
  let r = Core.Message.reader m in
  Alcotest.(check int) "first" 5 (Codes.read_fixed r ~width:4);
  Alcotest.(check int) "second" 9 (Codes.read_fixed r ~width:4)

let test_nat_codec_roundtrip () =
  let v = Nat.of_string "123456789123456789123456789" in
  let width = Nat.num_bits v + 5 in
  let w = Bit_writer.create () in
  Core.Nat_codec.write w ~width v;
  Alcotest.(check int) "exact width" width (Bit_writer.length w);
  let v' = Core.Nat_codec.read (Bit_reader.of_bitvec (Bit_writer.contents w)) ~width in
  Alcotest.(check bool) "roundtrip" true (Nat.equal v v')

let test_nat_codec_overflow () =
  let w = Bit_writer.create () in
  Alcotest.check_raises "does not fit" (Invalid_argument "Nat_codec.write: value does not fit")
    (fun () -> Core.Nat_codec.write w ~width:3 (Nat.of_int 9))

(* A toy protocol: every node reports its degree; referee sums them. *)
let degree_sum_protocol : int Core.Protocol.t =
  {
    name = "degree-sum";
    local =
      (fun v ->
        let w = Bit_writer.create () in
        Codes.write_fixed w ~width:(Core.Bounds.id_bits (Core.View.n v)) (Core.View.deg v);
        Core.Message.of_writer w);
    referee =
      Core.Protocol.streaming
        ~init:(fun ~n:_ -> 0)
        ~absorb:(fun ~n acc ~id:_ m ->
          acc + Codes.read_fixed (Core.Message.reader m) ~width:(Core.Bounds.id_bits n))
        ~finish:(fun ~n:_ acc -> acc);
  }

let test_simulator_run () =
  let g = Generators.cycle 6 in
  let out, t = Core.Simulator.run degree_sum_protocol g in
  Alcotest.(check int) "handshake" 12 out;
  Alcotest.(check int) "n" 6 t.Core.Simulator.n;
  Alcotest.(check int) "message bits" 3 t.Core.Simulator.max_bits;
  Alcotest.(check int) "total" 18 t.Core.Simulator.total_bits

let test_simulator_async_agrees () =
  let g = Generators.grid 3 4 in
  let out1, _ = Core.Simulator.run degree_sum_protocol g in
  let out2, _ = Core.Simulator.run_async ~rng:(Random.State.make [| 9 |]) degree_sum_protocol g in
  Alcotest.(check int) "same output" out1 out2

let test_frugality_checks () =
  let g = Generators.cycle 8 in
  let _, t = Core.Simulator.run degree_sum_protocol g in
  Alcotest.(check bool) "frugal c=1" true (Core.Simulator.is_frugal t ~c:1);
  Alcotest.(check bool) "ratio 1" true (Core.Simulator.frugality_ratio t = 1.0)

let test_protocol_map_output () =
  let doubled = Core.Protocol.map_output (fun v -> 2 * v) degree_sum_protocol in
  let out, _ = Core.Simulator.run doubled (Generators.cycle 5) in
  Alcotest.(check int) "mapped" 20 out

let test_stats_summary () =
  let g = Generators.cycle 6 in
  let ts = List.init 5 (fun _ -> snd (Core.Simulator.run degree_sum_protocol g)) in
  let s = Core.Stats.summarize ts in
  Alcotest.(check int) "runs" 5 s.Core.Stats.runs;
  Alcotest.(check int) "max" 3 s.Core.Stats.max_bits;
  Alcotest.(check (float 0.001)) "mean max" 3.0 s.Core.Stats.mean_max_bits;
  Alcotest.(check (float 0.001)) "mean total" 18.0 s.Core.Stats.mean_total_bits;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: no transcripts") (fun () ->
      ignore (Core.Stats.summarize []))

let test_partition_by_ranges () =
  Alcotest.(check (list (list int))) "even" [ [ 1; 2 ]; [ 3; 4 ] ]
    (Core.Coalition.partition_by_ranges ~n:4 ~parts:2);
  Alcotest.(check (list (list int))) "uneven" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Core.Coalition.partition_by_ranges ~n:5 ~parts:3);
  Alcotest.(check (list (list int))) "single" [ [ 1; 2; 3 ] ]
    (Core.Coalition.partition_by_ranges ~n:3 ~parts:1)

(* Coalition toy: each part's members send the part's edge-count share;
   referee adds.  Exercises pooled views. *)
let coalition_edge_count : int Core.Coalition.t =
  {
    name = "coalition-edge-count";
    local =
      (fun ~n view ->
        let internal =
          List.fold_left
            (fun acc (m, nbrs) ->
              acc
              + List.length
                  (List.filter (fun u -> u > m && List.mem_assoc u view.Core.Coalition.neighborhoods) nbrs)
              + List.length (List.filter (fun u -> not (List.mem_assoc u view.Core.Coalition.neighborhoods)) nbrs))
            0 view.Core.Coalition.neighborhoods
        in
        match view.Core.Coalition.members with
        | [] -> []
        | first :: rest ->
          let w = Bit_writer.create () in
          Codes.write_fixed w ~width:(2 * Core.Bounds.id_bits n) internal;
          (first, Core.Message.of_writer w)
          :: List.map (fun m -> (m, Core.Message.empty)) rest);
    referee =
      Core.Protocol.streaming
        ~init:(fun ~n:_ -> 0)
        ~absorb:(fun ~n acc ~id:_ m ->
          if Core.Message.bits m = 0 then acc
          else acc + Codes.read_fixed (Core.Message.reader m) ~width:(2 * Core.Bounds.id_bits n))
        ~finish:(fun ~n:_ acc -> acc);
  }

let test_coalition_run () =
  let g = Generators.cycle 6 in
  let parts = Core.Coalition.partition_by_ranges ~n:6 ~parts:3 in
  let out, t = Core.Coalition.run coalition_edge_count g ~parts in
  (* Internal edges counted once, boundary edges counted from both sides:
     out = m + boundary. *)
  Alcotest.(check bool) "at least m" true (out >= Graph.size g);
  Alcotest.(check int) "n messages" 6 t.Core.Simulator.n

let test_coalition_run_guards () =
  let g = Generators.cycle 4 in
  Alcotest.check_raises "bad partition"
    (Invalid_argument "Coalition.run: parts do not partition the vertices") (fun () ->
      ignore (Core.Coalition.run coalition_edge_count g ~parts:[ [ 1; 2 ]; [ 2; 3; 4 ] ]))

let test_bounds_formulas () =
  Alcotest.(check int) "id_bits 1" 1 (Core.Bounds.id_bits 1);
  Alcotest.(check int) "id_bits 8" 4 (Core.Bounds.id_bits 8);
  Alcotest.(check int) "forest" 28 (Core.Bounds.forest_message_bits 100);
  (* k=1 degeneracy layout equals the forest layout. *)
  Alcotest.(check int) "k=1 = forest"
    (Core.Bounds.forest_message_bits 1000)
    (Core.Bounds.degeneracy_message_bits ~k:1 1000);
  Alcotest.(check bool) "quadratic in k" true
    (Core.Bounds.degeneracy_message_bits ~k:6 1000
    > 3 * Core.Bounds.degeneracy_message_bits ~k:2 1000);
  (* id_bits 100 = 7, so the budget is 3 * 100 * 7. *)
  Alcotest.(check (float 0.001)) "lemma1 budget" 2100.0 (Core.Bounds.lemma1_budget ~c:3 100)

let prop_local_functions_pure =
  (* Definition 1's local functions are functions: evaluating one twice
     on the same (n, id, N) must give bit-identical messages.  Catches
     accidental global state in any protocol implementation. *)
  QCheck2.Test.make ~name:"local functions are deterministic" ~count:60
    QCheck2.Gen.(pair (int_range 2 20) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.3 in
      let locals =
        [
          Core.Forest_protocol.reconstruct.Core.Protocol.local;
          (Core.Degeneracy_protocol.reconstruct ~k:2 ()).Core.Protocol.local;
          (Core.Generalized_degeneracy.reconstruct ~k:2 ()).Core.Protocol.local;
          (Core.Sketch_connectivity.protocol ~seed:3 ()).Core.Protocol.local;
          Core.Easy_protocols.degree_sequence.Core.Protocol.local;
        ]
      in
      List.for_all
        (fun local ->
          List.for_all
            (fun id ->
              let nbrs = Graph.neighbors g id in
              let once = local (Core.View.make ~n ~id ~neighbors:nbrs) in
              let twice = local (Core.View.make ~n ~id ~neighbors:nbrs) in
              Core.Message.equal once twice)
            (Graph.vertices g))
        locals)

let prop_simulator_provides_sorted_neighbors =
  QCheck2.Test.make ~name:"the simulator hands nodes sorted neighbour sets" ~count:60
    QCheck2.Gen.(pair (int_range 1 25) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.4 in
      let sorted_seen = ref true in
      let probe : unit Core.Protocol.t =
        {
          name = "probe";
          local =
            (fun v ->
              let neighbors = Core.View.neighbors v in
              if List.sort_uniq compare neighbors <> neighbors then sorted_seen := false;
              Core.Message.empty);
          referee = Core.Protocol.batch (fun ~n:_ _ -> ());
        }
      in
      let () = fst (Core.Simulator.run probe g) in
      !sorted_seen)

let prop_async_equals_sync =
  QCheck2.Test.make ~name:"async delivery never changes the output" ~count:100
    QCheck2.Gen.(pair (int_range 1 20) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.3 in
      let o1, _ = Core.Simulator.run degree_sum_protocol g in
      let o2, _ = Core.Simulator.run_async ~rng degree_sum_protocol g in
      o1 = o2)

let () =
  Alcotest.run "model"
    [
      ( "message",
        [
          Alcotest.test_case "bits" `Quick test_message_bits;
          Alcotest.test_case "concat" `Quick test_message_concat;
          Alcotest.test_case "nat codec roundtrip" `Quick test_nat_codec_roundtrip;
          Alcotest.test_case "nat codec overflow" `Quick test_nat_codec_overflow;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "run" `Quick test_simulator_run;
          Alcotest.test_case "async agrees" `Quick test_simulator_async_agrees;
          Alcotest.test_case "frugality" `Quick test_frugality_checks;
          Alcotest.test_case "map_output" `Quick test_protocol_map_output;
          Alcotest.test_case "stats" `Quick test_stats_summary;
        ] );
      ( "coalition",
        [
          Alcotest.test_case "partition by ranges" `Quick test_partition_by_ranges;
          Alcotest.test_case "run" `Quick test_coalition_run;
          Alcotest.test_case "guards" `Quick test_coalition_run_guards;
        ] );
      ("bounds", [ Alcotest.test_case "formulas" `Quick test_bounds_formulas ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_local_functions_pure; prop_simulator_provides_sorted_neighbors; prop_async_equals_sync ] );
    ]
