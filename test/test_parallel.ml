(* The parallel engine's determinism contract: any pool width — including
   the sequential width 1 — produces byte-identical message vectors,
   transcripts, and referee outputs, because local phases are pure and
   every result lands in its slot by index. *)

open Refnet_graph

let widths = [ 1; 2; 4 ]

(* --- Parallel primitives ------------------------------------------- *)

let test_map_array_matches_sequential () =
  let a = Array.init 10_000 (fun i -> i) in
  let expected = Array.map (fun x -> (x * 7919) lxor (x lsr 3)) a in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "width %d" d)
        expected
        (Core.Parallel.map_array ~domains:d (fun x -> (x * 7919) lxor (x lsr 3)) a))
    widths

let test_init_matches_sequential () =
  let expected = Array.init 5_000 (fun i -> i * i) in
  List.iter
    (fun d ->
      Alcotest.(check (array int))
        (Printf.sprintf "width %d" d)
        expected
        (Core.Parallel.init ~domains:d 5_000 (fun i -> i * i)))
    widths

let test_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Core.Parallel.map_array ~domains:4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 1 |] (Core.Parallel.init ~domains:4 1 succ)

let test_exception_propagates () =
  List.iter
    (fun d ->
      Alcotest.check_raises
        (Printf.sprintf "width %d" d)
        (Failure "task 3128 failed")
        (fun () ->
          ignore
            (Core.Parallel.init ~domains:d 10_000 (fun i ->
                 if i = 3128 then failwith "task 3128 failed" else i))))
    widths

let test_exception_from_first_element () =
  (* Element 0 runs on the caller before the batch is published. *)
  Alcotest.check_raises "index 0" (Failure "head") (fun () ->
      ignore (Core.Parallel.init ~domains:4 100 (fun i -> if i = 0 then failwith "head" else i)))

let test_nested_calls_degrade () =
  let out =
    Core.Parallel.init ~domains:4 64 (fun i ->
        Array.fold_left ( + ) 0 (Core.Parallel.init ~domains:4 10 (fun j -> i + j)))
  in
  Alcotest.(check int) "nested sum" (Array.fold_left ( + ) 0 (Array.init 10 (fun j -> 63 + j))) out.(63)

let test_ctx_per_domain () =
  (* Contexts are mutable scratch; reusing them across chunks must not
     leak state between items when the task resets per item. *)
  let a = Array.init 2_000 (fun i -> i) in
  let out =
    Core.Parallel.map_array_ctx ~domains:4
      (fun () -> Buffer.create 16)
      (fun buf x ->
        Buffer.clear buf;
        Buffer.add_string buf (string_of_int x);
        Buffer.contents buf)
      a
  in
  Alcotest.(check string) "item 1234" "1234" out.(1234)

(* --- Simulator determinism across widths --------------------------- *)

let transcript_equal (t1 : Core.Simulator.transcript) (t2 : Core.Simulator.transcript) =
  t1.n = t2.n && t1.max_bits = t2.max_bits && t1.total_bits = t2.total_bits
  && t1.message_bits = t2.message_bits

let check_deterministic name (p : 'a Core.Protocol.t) eq g =
  let reference_msgs = Core.Simulator.local_phase ~domains:1 p g in
  let out1, tr1 = Core.Simulator.run ~domains:1 p g in
  List.iter
    (fun d ->
      let msgs = Core.Simulator.local_phase ~domains:d p g in
      Alcotest.(check bool)
        (Printf.sprintf "%s: messages byte-identical at width %d" name d)
        true
        (Array.for_all2 Core.Message.equal reference_msgs msgs);
      let out, tr = Core.Simulator.run ~domains:d p g in
      Alcotest.(check bool) (Printf.sprintf "%s: output at width %d" name d) true (eq out1 out);
      Alcotest.(check bool)
        (Printf.sprintf "%s: transcript at width %d" name d)
        true (transcript_equal tr1 tr))
    widths;
  (* The async simulator computes in a scrambled order (and across the
     pool) yet must reassemble the very same message vector. *)
  let out_async, tr_async = Core.Simulator.run_async ~domains:4 p g in
  Alcotest.(check bool) (name ^ ": async output") true (eq out1 out_async);
  Alcotest.(check bool) (name ^ ": async transcript") true (transcript_equal tr1 tr_async)

let graph_opt_eq a b =
  match (a, b) with Some g, Some h -> Graph.equal g h | None, None -> true | _ -> false

let test_determinism_gnp () =
  let r = Random.State.make [| 0xd0; 1 |] in
  for trial = 1 to 3 do
    let g = Generators.gnp r 48 0.15 in
    check_deterministic
      (Printf.sprintf "gnp trial %d" trial)
      (Core.Reduction.diameter3_oracle) ( = ) g
  done

let test_determinism_k_degenerate () =
  let r = Random.State.make [| 0xd0; 2 |] in
  for trial = 1 to 3 do
    let g = Generators.random_k_degenerate r 96 ~k:3 in
    check_deterministic
      (Printf.sprintf "k-degenerate trial %d" trial)
      (Core.Degeneracy_protocol.reconstruct ~k:3 ())
      graph_opt_eq g;
    (* Reconstruction must stay exact in parallel, not merely consistent. *)
    let out, _ = Core.Simulator.run ~domains:4 (Core.Degeneracy_protocol.reconstruct ~k:3 ()) g in
    Alcotest.(check bool) "exact reconstruction" true (out = Some g)
  done

let test_determinism_bipartite () =
  let r = Random.State.make [| 0xd0; 3 |] in
  for trial = 1 to 3 do
    let half = 6 in
    let g = Generators.random_bipartite r ~left:half ~right:half 0.4 in
    let left = List.init half (fun i -> i + 1) in
    let right = List.init half (fun i -> half + i + 1) in
    let delta =
      Core.Bipartite_reduction.connectivity
        ~oracle:Core.Bipartite_reduction.bipartiteness_oracle ~left ~right
    in
    check_deterministic (Printf.sprintf "bipartite trial %d" trial) delta ( = ) g;
    let verdict, _ = Core.Simulator.run ~domains:4 delta g in
    Alcotest.(check bool) "matches connectivity" (Connectivity.is_connected g) verdict
  done

let test_determinism_reduction_probe () =
  (* The O(n^2) probe sweep inside the Δ reduction's global phase runs on
     the pool; the rebuilt graph must equal the input regardless. *)
  let r = Random.State.make [| 0xd0; 4 |] in
  let g = Generators.random_tree r 14 in
  let delta = Core.Reduction.square Core.Reduction.square_oracle in
  List.iter
    (fun d ->
      let out, _ = Core.Simulator.run ~domains:d delta g in
      Alcotest.(check bool) (Printf.sprintf "rebuilt at width %d" d) true (Graph.equal out g))
    widths

let prop_determinism_random =
  QCheck2.Test.make ~name:"parallel = sequential on random gnp" ~count:25
    QCheck2.Gen.(triple (int_range 2 40) (int_range 0 1000) (int_range 1 4))
    (fun (n, seed, d) ->
      let g = Generators.gnp (Random.State.make [| seed; n |]) n 0.2 in
      let p = Core.Degeneracy_protocol.reconstruct ~k:2 () in
      let m1 = Core.Simulator.local_phase ~domains:1 p g in
      let md = Core.Simulator.local_phase ~domains:d p g in
      Array.for_all2 Core.Message.equal m1 md
      && fst (Core.Simulator.run ~domains:1 p g) = fst (Core.Simulator.run ~domains:d p g))

let () =
  Alcotest.run "parallel"
    [
      ( "pool primitives",
        [
          Alcotest.test_case "map_array = sequential map" `Quick test_map_array_matches_sequential;
          Alcotest.test_case "init = Array.init" `Quick test_init_matches_sequential;
          Alcotest.test_case "empty / singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "exception at index 0" `Quick test_exception_from_first_element;
          Alcotest.test_case "nested calls degrade" `Quick test_nested_calls_degrade;
          Alcotest.test_case "per-domain contexts" `Quick test_ctx_per_domain;
        ] );
      ( "simulator determinism",
        [
          Alcotest.test_case "gnp" `Quick test_determinism_gnp;
          Alcotest.test_case "k-degenerate" `Quick test_determinism_k_degenerate;
          Alcotest.test_case "bipartite" `Quick test_determinism_bipartite;
          Alcotest.test_case "reduction probe sweep" `Quick test_determinism_reduction_probe;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_determinism_random ] );
    ]
