open Refnet_graph

let graph = Alcotest.testable (fun fmt g -> Graph.pp fmt g) Graph.equal

let test_oracles_correct () =
  let sq g = fst (Core.Simulator.run Core.Reduction.square_oracle g) in
  let di g = fst (Core.Simulator.run Core.Reduction.diameter3_oracle g) in
  let tr g = fst (Core.Simulator.run Core.Reduction.triangle_oracle g) in
  Alcotest.(check bool) "C4 square" true (sq (Generators.cycle 4));
  Alcotest.(check bool) "C5 no square" false (sq (Generators.cycle 5));
  Alcotest.(check bool) "K4 triangle" true (tr (Generators.complete 4));
  Alcotest.(check bool) "grid no triangle" false (tr (Generators.grid 3 3));
  Alcotest.(check bool) "star diam 2" true (di (Generators.star 8));
  Alcotest.(check bool) "P6 diam 5" false (di (Generators.path 6))

let test_delta_square_reconstructs () =
  let delta = Core.Reduction.square Core.Reduction.square_oracle in
  List.iter
    (fun (name, g) -> Alcotest.check graph name g (fst (Core.Simulator.run delta g)))
    [
      ("tree", Generators.random_tree (Random.State.make [| 1 |]) 9);
      ("square-free", Generators.random_square_free (Random.State.make [| 2 |]) 8 ~attempts:100);
      ("C5", Generators.cycle 5);
      ("edgeless", Graph.empty 5);
    ]

let test_delta_diameter_reconstructs () =
  let delta = Core.Reduction.diameter Core.Reduction.diameter3_oracle in
  List.iter
    (fun (name, g) -> Alcotest.check graph name g (fst (Core.Simulator.run delta g)))
    [
      ("arbitrary gnp", Generators.gnp (Random.State.make [| 3 |]) 9 0.4);
      ("with a triangle", Generators.complete 5);
      ("disconnected", Graph.disjoint_union (Generators.path 3) (Generators.cycle 4));
      ("petersen", Generators.petersen ());
    ]

let test_delta_triangle_reconstructs () =
  let delta = Core.Reduction.triangle Core.Reduction.triangle_oracle in
  List.iter
    (fun (name, g) -> Alcotest.check graph name g (fst (Core.Simulator.run delta g)))
    [
      ("bipartite", Generators.random_bipartite (Random.State.make [| 4 |]) ~left:4 ~right:5 0.5);
      ("even cycle", Generators.cycle 8);
      ("tree", Generators.random_tree (Random.State.make [| 5 |]) 10);
    ]

let test_blowup_accounting () =
  (* Theorem 1: |Δ message| = oracle size at 2n; Theorems 2/3: three/two
     oracle messages plus framing. *)
  let n = 12 in
  let g = Generators.random_tree (Random.State.make [| 6 |]) n in
  let oracle_bits m = m in
  let _, t_sq =
    Core.Simulator.run (Core.Reduction.square Core.Reduction.square_oracle) g
  in
  Alcotest.(check int) "square: exactly the 2n oracle message"
    (Core.Bounds.reduction_blowup_square ~bits:oracle_bits n)
    t_sq.Core.Simulator.max_bits;
  let _, t_di =
    Core.Simulator.run (Core.Reduction.diameter Core.Reduction.diameter3_oracle) g
  in
  Alcotest.(check bool) "diameter: >= 3 oracle messages" true
    (t_di.Core.Simulator.max_bits >= Core.Bounds.reduction_blowup_diameter ~bits:oracle_bits n);
  Alcotest.(check bool) "diameter: framing stays logarithmic" true
    (t_di.Core.Simulator.max_bits
    <= Core.Bounds.reduction_blowup_diameter ~bits:oracle_bits n
       + (3 * ((2 * Core.Bounds.id_bits (n + 3)) + 1)));
  let _, t_tr =
    Core.Simulator.run (Core.Reduction.triangle Core.Reduction.triangle_oracle) g
  in
  Alcotest.(check bool) "triangle: >= 2 oracle messages" true
    (t_tr.Core.Simulator.max_bits >= Core.Bounds.reduction_blowup_triangle ~bits:oracle_bits n)

let test_delta_square_with_frugal_oracle_on_restricted_family () =
  (* A frugal oracle that is only correct on gadgets of bounded-degree
     square-free graphs: degree-bounded adjacency shipping at size 2n.
     Demonstrates the reduction machinery is oracle-agnostic. *)
  let frugal_oracle : bool Core.Protocol.t =
    Core.Protocol.rename "bounded-degree-square-decider"
      (Core.Protocol.map_output
         (function Some g -> Cycles.has_square g | None -> false)
         (Core.Bounded_degree.reconstruct ~max_degree:4))
  in
  let delta = Core.Reduction.square frugal_oracle in
  let g = Generators.path 8 in
  Alcotest.check graph "path via frugal oracle" g (fst (Core.Simulator.run delta g))

let prop_delta_square_on_trees =
  QCheck2.Test.make ~name:"Δ-square reconstructs every random tree" ~count:25
    QCheck2.Gen.(pair (int_range 2 10) int)
    (fun (n, seed) ->
      let g = Generators.random_tree (Random.State.make [| seed; n |]) n in
      let delta = Core.Reduction.square Core.Reduction.square_oracle in
      Graph.equal g (fst (Core.Simulator.run delta g)))

let prop_delta_diameter_on_gnp =
  QCheck2.Test.make ~name:"Δ-diameter reconstructs arbitrary G(n,p)" ~count:20
    QCheck2.Gen.(pair (int_range 2 8) int)
    (fun (n, seed) ->
      let g = Generators.gnp (Random.State.make [| seed; n |]) n 0.5 in
      let delta = Core.Reduction.diameter Core.Reduction.diameter3_oracle in
      Graph.equal g (fst (Core.Simulator.run delta g)))

let prop_delta_triangle_on_bipartite =
  QCheck2.Test.make ~name:"Δ-triangle reconstructs random bipartite" ~count:20
    QCheck2.Gen.(pair (int_range 1 5) int)
    (fun (half, seed) ->
      let g =
        Generators.random_bipartite (Random.State.make [| seed; half |]) ~left:half ~right:half 0.6
      in
      let delta = Core.Reduction.triangle Core.Reduction.triangle_oracle in
      Graph.equal g (fst (Core.Simulator.run delta g)))

let () =
  Alcotest.run "reduction"
    [
      ( "oracles",
        [ Alcotest.test_case "reference oracles correct" `Quick test_oracles_correct ] );
      ( "delta protocols",
        [
          Alcotest.test_case "Δ-square (Algorithm 1)" `Quick test_delta_square_reconstructs;
          Alcotest.test_case "Δ-diameter (Algorithm 2)" `Quick test_delta_diameter_reconstructs;
          Alcotest.test_case "Δ-triangle (Theorem 3)" `Quick test_delta_triangle_reconstructs;
          Alcotest.test_case "message blow-up accounting" `Quick test_blowup_accounting;
          Alcotest.test_case "frugal oracle variant" `Quick
            test_delta_square_with_frugal_oracle_on_restricted_family;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_delta_square_on_trees;
            prop_delta_diameter_on_gnp;
            prop_delta_triangle_on_bipartite;
          ] );
    ]
