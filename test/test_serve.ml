(* The serve stack, end to end but in-process: typed frames pushed
   through [Engine.feed_bytes] on a virtual clock, server frames decoded
   back out of [take_output].  This is the same byte path a socket
   client exercises — the daemon only moves these bytes across a fd.

   The invariants under test are the robustness contract: verdicts equal
   the offline referee's answer, backpressure is explicit, hostile
   connections are quarantined without collateral damage, timeouts force
   sound degraded verdicts, and drain finishes in-flight work. *)

open Refnet_graph

(* ---------- harness ---------- *)

type peer = { c : Serve.Engine.conn_id; d : Serve.Wire.decoder }

let connect engine =
  match Serve.Engine.open_conn engine with
  | Ok c -> { c; d = Serve.Wire.decoder () }
  | Error e -> Alcotest.failf "open_conn: %s" e

let feed engine p frame =
  let s = Serve.Frame.encode_client frame in
  Serve.Engine.feed_bytes engine p.c (Bytes.of_string s) ~off:0 ~len:(String.length s)

let feed_raw engine p s =
  Serve.Engine.feed_bytes engine p.c (Bytes.of_string s) ~off:0 ~len:(String.length s)

(* Decode every server frame currently queued for [p]. *)
let recv engine p =
  let out = Serve.Engine.take_output engine p.c in
  if out <> "" then
    Serve.Wire.push p.d (Bytes.of_string out) ~off:0 ~len:(String.length out);
  let rec go acc =
    match Serve.Wire.next p.d with
    | Serve.Wire.Frame { kind; payload } -> (
      match Serve.Frame.decode_server ~kind payload with
      | Ok f -> go (f :: acc)
      | Error e -> Alcotest.failf "undecodable server frame: %s" e)
    | Serve.Wire.Awaiting -> List.rev acc
    | Serve.Wire.Corrupt e -> Alcotest.failf "corrupt server stream: %s" e
  in
  go []

let pp_server f = Format.asprintf "%a" Serve.Frame.pp_server f

let engine_with ?(cfg = Serve.Engine.default_config) clock =
  Serve.Engine.create ~clock:(fun () -> !clock) cfg

(* Handshake + open; returns the session id and initial credit. *)
let open_session engine p ~protocol ~n =
  feed engine p (Serve.Frame.Hello { version = Serve.Frame.version });
  feed engine p (Serve.Frame.Open { open_id = 1; protocol; n; trace = 0L });
  Serve.Engine.tick engine;
  match recv engine p with
  | [ Serve.Frame.Welcome _; Serve.Frame.Opened { session; credit; _ } ] -> (session, credit)
  | fs ->
    Alcotest.failf "handshake got [%s]" (String.concat "; " (List.map pp_server fs))

(* The Verdict fields the assertions care about, extracted from the
   inline record. *)
type verdict = {
  status : Serve.Frame.status;
  timeout : Serve.Frame.timeout_kind;
  payload : string;
  missing : int;
}

(* Run ticks until a Verdict for [session] shows up (or give up). *)
let await_verdict engine p ~session =
  let rec go budget acc =
    if budget = 0 then Alcotest.fail "no verdict within tick budget"
    else begin
      Serve.Engine.tick engine;
      let frames = recv engine p in
      match
        List.find_map
          (function
            | Serve.Frame.Verdict { session = s; status; timeout; payload; missing; _ }
              when s = session ->
              Some { status; timeout; payload; missing }
            | _ -> None)
          frames
      with
      | Some v -> (v, acc @ frames)
      | None -> go (budget - 1) (acc @ frames)
    end
  in
  go 50 []

let count_msgs protocol g =
  (* node i's uplink message, 1-based ids *)
  Core.Simulator.local_phase protocol g

(* ---------- frame codec ---------- *)

let roundtrip_client f =
  let s = Serve.Frame.encode_client f in
  let d = Serve.Wire.decoder () in
  Serve.Wire.push d (Bytes.of_string s) ~off:0 ~len:(String.length s);
  match Serve.Wire.next d with
  | Serve.Wire.Frame { kind; payload } -> (
    match Serve.Frame.decode_client ~kind payload with
    | Ok f' ->
      Alcotest.(check string)
        "client roundtrip"
        (Format.asprintf "%a" Serve.Frame.pp_client f)
        (Format.asprintf "%a" Serve.Frame.pp_client f')
    | Error e -> Alcotest.failf "decode_client: %s" e)
  | _ -> Alcotest.fail "encode_client did not frame"

let roundtrip_server f =
  let s = Serve.Frame.encode_server f in
  let d = Serve.Wire.decoder () in
  Serve.Wire.push d (Bytes.of_string s) ~off:0 ~len:(String.length s);
  match Serve.Wire.next d with
  | Serve.Wire.Frame { kind; payload } -> (
    match Serve.Frame.decode_server ~kind payload with
    | Ok f' -> Alcotest.(check string) "server roundtrip" (pp_server f) (pp_server f')
    | Error e -> Alcotest.failf "decode_server: %s" e)
  | _ -> Alcotest.fail "encode_server did not frame"

let test_frame_roundtrips () =
  let msg =
    let w = Refnet_bits.Bit_writer.create () in
    Refnet_bits.Codes.write_fixed w ~width:11 0b10110011101;
    Core.Message.of_writer w
  in
  List.iter roundtrip_client
    [
      Serve.Frame.Hello { version = Serve.Frame.version };
      Serve.Frame.Open
        { open_id = 42; protocol = "degeneracy:3"; n = 100; trace = 0x1122334455667788L };
      Serve.Frame.Msg { session = 9; node = 4; payload = msg };
      Serve.Frame.Msg { session = 9; node = 5; payload = Core.Message.empty };
      Serve.Frame.Finish { session = 9 };
      Serve.Frame.Abort { session = 9 };
      Serve.Frame.Ping { token = 123456 };
      Serve.Frame.Bye;
    ];
  List.iter roundtrip_server
    [
      Serve.Frame.Welcome { version = Serve.Frame.version; trace = 0xfeedfaceL };
      Serve.Frame.Opened { open_id = 42; session = 7; credit = 256 };
      Serve.Frame.Credit { session = 7; credit = 16 };
      Serve.Frame.Verdict
        {
          session = 7;
          status = Serve.Frame.Degraded;
          timeout = Serve.Frame.Idle_timeout;
          payload = "nodes=8;degsum=14";
          missing = 3;
          malformed = 1;
          duplicated = 0;
          undetermined = 2;
          trace = 0x0123456789abcdefL;
        };
      Serve.Frame.Rejected
        {
          open_id = 42;
          reason = Serve.Frame.Overloaded;
          retry_after_ms = 250;
          trace = 0L;
          detail = "";
        };
      Serve.Frame.Rejected
        {
          open_id = 43;
          reason = Serve.Frame.Evidence;
          retry_after_ms = 0;
          trace = 0xabcdefL;
          detail = "mid-flight: events=3 absorbed=2 last=open seq=9";
        };
      Serve.Frame.Error { code = Serve.Frame.Slow_consumer; detail = "peer stopped reading" };
      Serve.Frame.Pong { token = 123456 };
    ]

let test_wire_digest_trips () =
  let s = Serve.Frame.encode_client (Serve.Frame.Finish { session = 3 }) in
  let b = Bytes.of_string s in
  (* flip a payload byte: header parses, digest must catch it *)
  let i = Serve.Wire.header_bytes in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  let d = Serve.Wire.decoder () in
  Serve.Wire.push d b ~off:0 ~len:(Bytes.length b);
  match Serve.Wire.next d with
  | Serve.Wire.Corrupt _ -> ()
  | _ -> Alcotest.fail "digest mismatch not detected"

(* ---------- registry ---------- *)

let test_registry_specs () =
  List.iter
    (fun spec ->
      match Serve.Registry.lookup ~spec ~n:8 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "spec %S rejected: %s" spec e)
    [ "count"; "forest"; "degeneracy:2"; "bounded:3"; "sketch:7" ];
  (match Serve.Registry.lookup ~spec:"nope" ~n:8 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown spec accepted");
  (match Serve.Registry.max_n "degeneracy:2" with
  | Some cap -> (
    match Serve.Registry.lookup ~spec:"degeneracy:2" ~n:(cap + 1) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "over-cap n accepted")
  | None -> Alcotest.fail "well-formed spec has no cap");
  Alcotest.(check (option int)) "malformed spec has no cap" None (Serve.Registry.max_n "degeneracy:x")

let test_render_graph_small_is_graph6 () =
  let g = Generators.cycle 9 in
  Alcotest.(check string) "graph6 for small orders"
    ("graph:" ^ Gio.to_graph6 g)
    (Serve.Registry.render_graph g)

(* ---------- sessions ---------- *)

let test_verdict_matches_offline_referee () =
  List.iter
    (fun (spec, g) ->
      let n = Graph.order g in
      match Serve.Registry.lookup ~spec ~n with
      | Error e -> Alcotest.failf "lookup %s: %s" spec e
      | Ok (Serve.Registry.Entry { protocol; render }) ->
        let msgs = count_msgs protocol g in
        let expected =
          match Core.Protocol.apply protocol ~n msgs with
          | Core.Verdict.Decided x -> render x
          | _ -> Alcotest.failf "%s: clean offline run must decide" spec
        in
        let clock = ref 0.0 in
        let engine = engine_with clock in
        let p = connect engine in
        let session, _credit = open_session engine p ~protocol:spec ~n in
        Array.iteri
          (fun i m -> feed engine p (Serve.Frame.Msg { session; node = i + 1; payload = m }))
          msgs;
        feed engine p (Serve.Frame.Finish { session });
        let v, _ = await_verdict engine p ~session in
        Alcotest.(check bool) (spec ^ " decided") true (v.status = Serve.Frame.Decided);
        Alcotest.(check string) (spec ^ " payload") expected v.payload;
        let s = Serve.Engine.stats engine in
        Alcotest.(check int) "no quarantines" 0 s.Serve.Engine.quarantines;
        Alcotest.(check int) "no escapes" 0 s.Serve.Engine.quarantine_escapes)
    [
      ("count", Generators.path 6);
      ("forest", Generators.random_tree (Random.State.make [| 11 |]) 10);
      ("sketch:5", Generators.cycle 12);
    ]

let test_credit_backpressure () =
  let clock = ref 0.0 in
  let cfg = { Serve.Engine.default_config with session_credit = 2 } in
  let engine = engine_with ~cfg clock in
  let p = connect engine in
  let g = Generators.path 6 in
  let (Serve.Registry.Entry { protocol; _ }) =
    match Serve.Registry.lookup ~spec:"count" ~n:6 with
    | Ok e -> e
    | Error e -> Alcotest.failf "lookup: %s" e
  in
  let msgs = count_msgs protocol g in
  let session, credit = open_session engine p ~protocol:"count" ~n:6 in
  Alcotest.(check int) "announced window" 2 credit;
  (* stream the whole session under a window of 2, banking grants *)
  let window = ref credit and sent = ref 0 and grants = ref 0 in
  while !sent < Array.length msgs do
    if !window = 0 then begin
      Serve.Engine.tick engine;
      List.iter
        (function
          | Serve.Frame.Credit { session = s; credit } when s = session ->
            grants := !grants + 1;
            window := !window + credit
          | f -> Alcotest.failf "wanted Credit, got %s" (pp_server f))
        (recv engine p);
      if !window = 0 then Alcotest.fail "engine granted no credit"
    end
    else begin
      feed engine p (Serve.Frame.Msg { session; node = !sent + 1; payload = msgs.(!sent) });
      incr sent;
      decr window
    end
  done;
  feed engine p (Serve.Frame.Finish { session });
  let v, _ = await_verdict engine p ~session in
  Alcotest.(check bool) "decided under backpressure" true (v.status = Serve.Frame.Decided);
  Alcotest.(check bool) "credit was granted" true (!grants > 0)

let test_credit_overrun_quarantines () =
  let clock = ref 0.0 in
  let cfg = { Serve.Engine.default_config with session_credit = 2 } in
  let engine = engine_with ~cfg clock in
  let p = connect engine in
  let session, _ = open_session engine p ~protocol:"count" ~n:6 in
  for node = 1 to 3 do
    (* one past the window, without waiting for a grant *)
    feed engine p (Serve.Frame.Msg { session; node; payload = Core.Message.empty })
  done;
  Serve.Engine.tick engine;
  let errs =
    List.filter_map
      (function Serve.Frame.Error { code; _ } -> Some code | _ -> None)
      (recv engine p)
  in
  Alcotest.(check bool) "typed Credit_exceeded" true
    (List.mem Serve.Frame.Credit_exceeded errs);
  Alcotest.(check bool) "connection closed" true (Serve.Engine.wants_close engine p.c);
  Alcotest.(check int) "one quarantine" 1 (Serve.Engine.stats engine).Serve.Engine.quarantines

let rejections_of frames =
  List.filter_map
    (function
      | Serve.Frame.Rejected { open_id; reason; retry_after_ms; _ } ->
        Some (open_id, (reason, retry_after_ms))
      | _ -> None)
    frames

let test_admission_shed () =
  (* admission control runs before spec resolution: at capacity, every
     open sheds Overloaded with the configured retry hint *)
  let clock = ref 0.0 in
  let cfg = { Serve.Engine.default_config with max_sessions = 1; retry_after_ms = 99 } in
  let engine = engine_with ~cfg clock in
  let p1 = connect engine in
  let _session, _ = open_session engine p1 ~protocol:"count" ~n:4 in
  let p2 = connect engine in
  feed engine p2 (Serve.Frame.Hello { version = Serve.Frame.version });
  feed engine p2 (Serve.Frame.Open { open_id = 5; protocol = "count"; n = 4; trace = 0L });
  Serve.Engine.tick engine;
  (match List.assoc_opt 5 (rejections_of (recv engine p2)) with
  | Some (Serve.Frame.Overloaded, 99) -> ()
  | _ -> Alcotest.fail "open 5 must shed Overloaded with the configured retry_after");
  Alcotest.(check int) "shed counted" 1 (Serve.Engine.stats engine).Serve.Engine.sheds

let test_open_rejections_typed () =
  let clock = ref 0.0 in
  let engine = engine_with clock in
  let p = connect engine in
  feed engine p (Serve.Frame.Hello { version = Serve.Frame.version });
  feed engine p (Serve.Frame.Open { open_id = 6; protocol = "nope"; n = 4; trace = 0L });
  feed engine p
    (Serve.Frame.Open { open_id = 7; protocol = "degeneracy:2"; n = 1_000_000; trace = 0L });
  Serve.Engine.tick engine;
  let rejects = rejections_of (recv engine p) in
  (match List.assoc_opt 6 rejects with
  | Some (Serve.Frame.Unknown_protocol, _) -> ()
  | _ -> Alcotest.fail "open 6 must reject Unknown_protocol");
  (match List.assoc_opt 7 rejects with
  | Some (Serve.Frame.Bad_n, _) -> ()
  | _ -> Alcotest.fail "open 7 must reject Bad_n");
  (* typed rejections are not faults: the connection stays usable *)
  Alcotest.(check bool) "conn survives" false (Serve.Engine.wants_close engine p.c);
  Alcotest.(check int) "no quarantine" 0 (Serve.Engine.stats engine).Serve.Engine.quarantines;
  (* each reject reason lands in its own stats counter *)
  let s = Serve.Engine.stats engine in
  Alcotest.(check int) "unknown_protocol counted" 1 s.Serve.Engine.rej_unknown_protocol;
  Alcotest.(check int) "bad_n counted" 1 s.Serve.Engine.rej_bad_n;
  Alcotest.(check int) "evidence untouched" 0 s.Serve.Engine.rej_evidence

(* ---------- session tracing ---------- *)

let hello_trace engine p =
  feed engine p (Serve.Frame.Hello { version = Serve.Frame.version });
  Serve.Engine.tick engine;
  match recv engine p with
  | [ Serve.Frame.Welcome { trace; _ } ] -> trace
  | fs -> Alcotest.failf "hello got [%s]" (String.concat "; " (List.map pp_server fs))

let test_welcome_mints_distinct_traces () =
  let clock = ref 1234.5 in
  let engine = engine_with clock in
  let t1 = hello_trace engine (connect engine) in
  let t2 = hello_trace engine (connect engine) in
  Alcotest.(check bool) "trace ids nonzero" true (t1 <> 0L && t2 <> 0L);
  Alcotest.(check bool) "trace ids distinct" true (t1 <> t2)

let test_verdict_carries_conn_trace () =
  let clock = ref 42.0 in
  let engine = engine_with clock in
  let p = connect engine in
  let conn_trace = hello_trace engine p in
  feed engine p (Serve.Frame.Open { open_id = 1; protocol = "count"; n = 4; trace = 0L });
  Serve.Engine.tick engine;
  let session =
    match recv engine p with
    | [ Serve.Frame.Opened { session; _ } ] -> session
    | fs -> Alcotest.failf "open got [%s]" (String.concat "; " (List.map pp_server fs))
  in
  let g = Generators.path 4 in
  let (Serve.Registry.Entry { protocol; _ }) =
    match Serve.Registry.lookup ~spec:"count" ~n:4 with
    | Ok e -> e
    | Error e -> Alcotest.failf "lookup: %s" e
  in
  Array.iteri
    (fun i m -> feed engine p (Serve.Frame.Msg { session; node = i + 1; payload = m }))
    (count_msgs protocol g);
  feed engine p (Serve.Frame.Finish { session });
  let rec go budget =
    if budget = 0 then Alcotest.fail "no verdict"
    else begin
      Serve.Engine.tick engine;
      match
        List.find_map
          (function
            | Serve.Frame.Verdict { session = s; trace; _ } when s = session -> Some trace
            | _ -> None)
          (recv engine p)
      with
      | Some t -> t
      | None -> go (budget - 1)
    end
  in
  let verdict_trace = go 50 in
  Alcotest.(check bool) "verdict trace = Welcome trace" true (verdict_trace = conn_trace)

let test_evidence_rejection () =
  let clock = ref 7.0 in
  let engine = engine_with clock in
  let doomed = 0x00c0ffee600dcafeL in
  let summary = "mid-flight: events=5 absorbed=3 last=absorb seq=17" in
  Serve.Engine.load_evidence engine [ (doomed, summary) ];
  Alcotest.(check int) "evidence loaded" 1 (Serve.Engine.evidence_count engine);
  let p = connect engine in
  let _ = hello_trace engine p in
  (* resuming the doomed trace id is refused with the crash evidence *)
  feed engine p
    (Serve.Frame.Open { open_id = 3; protocol = "count"; n = 4; trace = doomed });
  Serve.Engine.tick engine;
  (match recv engine p with
  | [ Serve.Frame.Rejected { open_id = 3; reason = Serve.Frame.Evidence; trace; detail; _ } ]
    ->
    Alcotest.(check bool) "reject echoes resumed trace" true (trace = doomed);
    Alcotest.(check string) "reject carries the summary" summary detail
  | fs -> Alcotest.failf "resume got [%s]" (String.concat "; " (List.map pp_server fs)));
  Alcotest.(check int) "evidence reject counted" 1
    (Serve.Engine.stats engine).Serve.Engine.rej_evidence;
  (* a fresh open on the same conn is unaffected *)
  feed engine p (Serve.Frame.Open { open_id = 4; protocol = "count"; n = 4; trace = 0L });
  Serve.Engine.tick engine;
  match recv engine p with
  | [ Serve.Frame.Opened { open_id = 4; _ } ] -> ()
  | fs -> Alcotest.failf "fresh open got [%s]" (String.concat "; " (List.map pp_server fs))

let test_idle_timeout_degrades () =
  let clock = ref 0.0 in
  let cfg = { Serve.Engine.default_config with idle_timeout_s = 0.5; deadline_s = 60. } in
  let engine = engine_with ~cfg clock in
  let p = connect engine in
  let session, _ = open_session engine p ~protocol:"count" ~n:8 in
  let g = Generators.path 8 in
  let (Serve.Registry.Entry { protocol; _ }) =
    match Serve.Registry.lookup ~spec:"count" ~n:8 with
    | Ok e -> e
    | Error e -> Alcotest.failf "lookup: %s" e
  in
  let msgs = count_msgs protocol g in
  for node = 1 to 3 do
    feed engine p (Serve.Frame.Msg { session; node; payload = msgs.(node - 1) })
  done;
  Serve.Engine.tick engine;
  ignore (recv engine p);
  (* the client goes quiet; the session must still end, soundly *)
  clock := !clock +. 1.0;
  let v, _ = await_verdict engine p ~session in
  Alcotest.(check bool) "idle timeout flagged" true (v.timeout = Serve.Frame.Idle_timeout);
  Alcotest.(check bool) "never a clean Decided" true (v.status <> Serve.Frame.Decided);
  Alcotest.(check int) "missing nodes reported" 5 v.missing;
  Alcotest.(check int) "idle timeout counted" 1
    (Serve.Engine.stats engine).Serve.Engine.timeouts_idle

let test_deadline_degrades () =
  let clock = ref 0.0 in
  let cfg = { Serve.Engine.default_config with idle_timeout_s = 60.; deadline_s = 2. } in
  let engine = engine_with ~cfg clock in
  let p = connect engine in
  let session, _ = open_session engine p ~protocol:"count" ~n:8 in
  (* keep trickling so the idle timer never fires; the deadline must *)
  for node = 1 to 2 do
    feed engine p (Serve.Frame.Msg { session; node; payload = Core.Message.empty });
    Serve.Engine.tick engine;
    clock := !clock +. 0.7
  done;
  clock := 2.5;
  let v, _ = await_verdict engine p ~session in
  Alcotest.(check bool) "deadline flagged" true (v.timeout = Serve.Frame.Deadline_timeout);
  Alcotest.(check bool) "never a clean Decided" true (v.status <> Serve.Frame.Decided);
  Alcotest.(check int) "deadline counted" 1
    (Serve.Engine.stats engine).Serve.Engine.timeouts_deadline

let test_abort_is_inconclusive () =
  let clock = ref 0.0 in
  let engine = engine_with clock in
  let p = connect engine in
  let session, _ = open_session engine p ~protocol:"count" ~n:4 in
  feed engine p (Serve.Frame.Abort { session });
  Serve.Engine.tick engine;
  (match recv engine p with
  | [ Serve.Frame.Verdict { status = Serve.Frame.Inconclusive; payload; _ } ] ->
    Alcotest.(check string) "reason" "aborted by client" payload
  | fs -> Alcotest.failf "abort got [%s]" (String.concat "; " (List.map pp_server fs)));
  Alcotest.(check int) "aborted counted" 1 (Serve.Engine.stats engine).Serve.Engine.aborted

let test_quarantine_is_isolated () =
  let clock = ref 0.0 in
  let engine = engine_with clock in
  let hostile = connect engine in
  let honest = connect engine in
  let session, _ = open_session engine honest ~protocol:"count" ~n:6 in
  (* the hostile peer opens a session too, then turns to garbage *)
  let h_session, _ = open_session engine hostile ~protocol:"count" ~n:6 in
  ignore h_session;
  feed_raw engine hostile "\xde\xad\xbe\xef not a frame at all";
  Serve.Engine.tick engine;
  let errs = recv engine hostile in
  Alcotest.(check bool) "hostile got a typed Error" true
    (List.exists (function Serve.Frame.Error _ -> true | _ -> false) errs);
  Alcotest.(check bool) "hostile is closing" true (Serve.Engine.wants_close engine hostile.c);
  (* the honest session still completes, bit-for-bit *)
  let g = Generators.path 6 in
  let (Serve.Registry.Entry { protocol; _ }) =
    match Serve.Registry.lookup ~spec:"count" ~n:6 with
    | Ok e -> e
    | Error e -> Alcotest.failf "lookup: %s" e
  in
  let msgs = count_msgs protocol g in
  Array.iteri
    (fun i m -> feed engine honest (Serve.Frame.Msg { session; node = i + 1; payload = m }))
    msgs;
  feed engine honest (Serve.Frame.Finish { session });
  let v, _ = await_verdict engine honest ~session in
  Alcotest.(check bool) "honest session decided" true (v.status = Serve.Frame.Decided);
  let s = Serve.Engine.stats engine in
  Alcotest.(check int) "one quarantine" 1 s.Serve.Engine.quarantines;
  Alcotest.(check int) "zero escapes" 0 s.Serve.Engine.quarantine_escapes

let test_drain_finishes_inflight () =
  let clock = ref 0.0 in
  let engine = engine_with clock in
  let p = connect engine in
  let session, _ = open_session engine p ~protocol:"count" ~n:4 in
  Serve.Engine.begin_drain engine;
  Alcotest.(check bool) "draining" true (Serve.Engine.draining engine);
  feed engine p (Serve.Frame.Open { open_id = 9; protocol = "count"; n = 4; trace = 0L });
  Serve.Engine.tick engine;
  (match
     List.find_opt
       (function Serve.Frame.Rejected { open_id = 9; _ } -> true | _ -> false)
       (recv engine p)
   with
  | Some (Serve.Frame.Rejected { reason = Serve.Frame.Draining; _ }) -> ()
  | _ -> Alcotest.fail "open during drain must reject Draining");
  Alcotest.(check bool) "not idle while in flight" false (Serve.Engine.idle engine);
  let g = Generators.path 4 in
  let (Serve.Registry.Entry { protocol; _ }) =
    match Serve.Registry.lookup ~spec:"count" ~n:4 with
    | Ok e -> e
    | Error e -> Alcotest.failf "lookup: %s" e
  in
  Array.iteri
    (fun i m -> feed engine p (Serve.Frame.Msg { session; node = i + 1; payload = m }))
    (count_msgs protocol g);
  feed engine p (Serve.Frame.Finish { session });
  let v, _ = await_verdict engine p ~session in
  Alcotest.(check bool) "in-flight session decided during drain" true
    (v.status = Serve.Frame.Decided);
  Alcotest.(check bool) "idle after drain" true (Serve.Engine.idle engine);
  Alcotest.(check int) "drain rejection counted" 1
    (Serve.Engine.stats engine).Serve.Engine.drain_rejections

let test_ping_pong_and_bye () =
  let clock = ref 0.0 in
  let engine = engine_with clock in
  let p = connect engine in
  feed engine p (Serve.Frame.Hello { version = Serve.Frame.version });
  feed engine p (Serve.Frame.Ping { token = 7216 });
  Serve.Engine.tick engine;
  (match recv engine p with
  | [ Serve.Frame.Welcome _; Serve.Frame.Pong { token } ] ->
    Alcotest.(check int) "token echoed" 7216 token
  | fs -> Alcotest.failf "ping got [%s]" (String.concat "; " (List.map pp_server fs)));
  feed engine p Serve.Frame.Bye;
  Serve.Engine.tick engine;
  Alcotest.(check bool) "bye closes" true (Serve.Engine.wants_close engine p.c);
  Alcotest.(check int) "bye is not a quarantine" 0
    (Serve.Engine.stats engine).Serve.Engine.quarantines

let test_version_mismatch_quarantines () =
  let clock = ref 0.0 in
  let engine = engine_with clock in
  let p = connect engine in
  feed engine p (Serve.Frame.Hello { version = Serve.Frame.version + 1 });
  Serve.Engine.tick engine;
  (match recv engine p with
  | [ Serve.Frame.Error { code = Serve.Frame.Protocol_violation; _ } ] -> ()
  | fs -> Alcotest.failf "mismatch got [%s]" (String.concat "; " (List.map pp_server fs)));
  Alcotest.(check bool) "closing" true (Serve.Engine.wants_close engine p.c)

(* ---------- selftest campaign ---------- *)

let test_selftest_clean () =
  let cfg = { Serve.Selftest.default_cfg with sessions = 300; conns = 8 } in
  let o = Serve.Selftest.run cfg in
  (match Serve.Selftest.passed o with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean selftest failed: %s" e);
  Alcotest.(check int) "all decided" 300 o.Serve.Selftest.o_decided

let test_selftest_chaos () =
  let cfg =
    { Serve.Selftest.default_cfg with sessions = 400; conns = 16; faulty = 0.25 }
  in
  let o = Serve.Selftest.run cfg in
  (match Serve.Selftest.passed o with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chaos selftest failed: %s" e);
  Alcotest.(check bool) "chaos actually hit" true
    (o.Serve.Selftest.o_quarantines > 0
    || o.Serve.Selftest.o_timeouts_idle > 0
    || o.Serve.Selftest.o_aborted > 0);
  Alcotest.(check int) "no lies under chaos" 0 o.Serve.Selftest.o_wrong_decided

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "frame roundtrips" `Quick test_frame_roundtrips;
          Alcotest.test_case "digest trips on flip" `Quick test_wire_digest_trips;
        ] );
      ( "registry",
        [
          Alcotest.test_case "specs and caps" `Quick test_registry_specs;
          Alcotest.test_case "graph rendering" `Quick test_render_graph_small_is_graph6;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "verdict equals offline referee" `Quick
            test_verdict_matches_offline_referee;
          Alcotest.test_case "credit backpressure" `Quick test_credit_backpressure;
          Alcotest.test_case "credit overrun quarantines" `Quick test_credit_overrun_quarantines;
          Alcotest.test_case "admission shed" `Quick test_admission_shed;
          Alcotest.test_case "typed open rejections" `Quick test_open_rejections_typed;
          Alcotest.test_case "idle timeout degrades" `Quick test_idle_timeout_degrades;
          Alcotest.test_case "deadline degrades" `Quick test_deadline_degrades;
          Alcotest.test_case "abort is inconclusive" `Quick test_abort_is_inconclusive;
          Alcotest.test_case "quarantine is isolated" `Quick test_quarantine_is_isolated;
          Alcotest.test_case "drain finishes in-flight" `Quick test_drain_finishes_inflight;
          Alcotest.test_case "ping pong and bye" `Quick test_ping_pong_and_bye;
          Alcotest.test_case "version mismatch quarantines" `Quick
            test_version_mismatch_quarantines;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "welcome mints distinct traces" `Quick
            test_welcome_mints_distinct_traces;
          Alcotest.test_case "verdict carries conn trace" `Quick test_verdict_carries_conn_trace;
          Alcotest.test_case "evidence rejection" `Quick test_evidence_rejection;
        ] );
      ( "selftest",
        [
          Alcotest.test_case "clean campaign" `Quick test_selftest_clean;
          Alcotest.test_case "chaos campaign" `Quick test_selftest_chaos;
        ] );
    ]
