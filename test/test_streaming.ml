(* Streaming-referee layer: arrival-order insensitivity for every
   shipped protocol, the feed API, View audits and guards, Message
   framing round-trips, and the Trace sinks. *)

open Refnet_graph

let shuffled_order rng n =
  let order = Array.init n (fun i -> i + 1) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  order

(* Feed the protocol's recorded messages in several random arrival
   orders and demand the finish output never moves off the id-order
   reference — the contract documented on {!Protocol.stream}. *)
let check_order_insensitive (type a) name (p : a Core.Protocol.t) (eq : a -> a -> bool) g =
  let n = Graph.order g in
  let msgs = Core.Simulator.local_phase p g in
  let reference = Core.Protocol.apply p ~n msgs in
  let rng = Random.State.make [| 0x07d3; Hashtbl.hash name |] in
  for _trial = 1 to 5 do
    let order = shuffled_order rng n in
    let feed = ref (Core.Protocol.start p.Core.Protocol.referee ~n) in
    Array.iter (fun id -> feed := Core.Protocol.feed !feed ~id msgs.(id - 1)) order;
    if not (eq (Core.Protocol.finish !feed) reference) then
      Alcotest.failf "%s: referee output depends on arrival order" name
  done

let graph_opt_eq a b =
  match (a, b) with
  | None, None -> true
  | Some g, Some h -> Graph.equal g h
  | _ -> false

let test_graphs seed =
  let rng = Random.State.make [| seed |] in
  [
    Generators.random_tree rng 17;
    Generators.cycle 9;
    Generators.grid 3 4;
    Generators.gnp rng 12 0.3;
  ]

let test_reconstruction_order_insensitive () =
  List.iter
    (fun g ->
      check_order_insensitive "forest-reconstruct" Core.Forest_protocol.reconstruct graph_opt_eq g;
      check_order_insensitive "degeneracy-k2"
        (Core.Degeneracy_protocol.reconstruct ~k:2 ())
        graph_opt_eq g;
      check_order_insensitive "generalized-k2"
        (Core.Generalized_degeneracy.reconstruct ~k:2 ())
        graph_opt_eq g;
      check_order_insensitive "bounded-degree-4"
        (Core.Bounded_degree.reconstruct ~max_degree:4)
        graph_opt_eq g;
      check_order_insensitive "full-information" Core.Bounded_degree.full_information Graph.equal g)
    (test_graphs 11)

let test_decision_order_insensitive () =
  List.iter
    (fun g ->
      check_order_insensitive "forest-recognize" Core.Forest_protocol.recognize ( = ) g;
      check_order_insensitive "sketch-connectivity" (Core.Sketch_connectivity.protocol ~seed:3 ()) ( = ) g;
      check_order_insensitive "degree-sequence" Core.Easy_protocols.degree_sequence ( = ) g;
      check_order_insensitive "edge-count" Core.Easy_protocols.edge_count ( = ) g;
      check_order_insensitive "has-edge" Core.Easy_protocols.has_edge ( = ) g;
      check_order_insensitive "max-degree" Core.Easy_protocols.max_degree ( = ) g;
      check_order_insensitive "min-degree" Core.Easy_protocols.min_degree ( = ) g;
      check_order_insensitive "is-regular" Core.Easy_protocols.is_regular ( = ) g;
      check_order_insensitive "isolated" Core.Easy_protocols.has_isolated_vertex ( = ) g;
      check_order_insensitive "universal" Core.Easy_protocols.has_universal_vertex ( = ) g;
      check_order_insensitive "all-even" Core.Easy_protocols.all_degrees_even ( = ) g;
      check_order_insensitive "sum-of-ids" Core.Easy_protocols.sum_of_ids_check ( = ) g)
    (test_graphs 23)

let test_reduction_order_insensitive () =
  (* The Δ-reductions use batch referees; the adapter slots messages by
     identifier, so arrival order must still be invisible. *)
  let g = Generators.path 6 in
  check_order_insensitive "delta-square"
    (Core.Reduction.square Core.Reduction.square_oracle)
    Graph.equal g;
  check_order_insensitive "square-oracle" Core.Reduction.square_oracle ( = ) g

let prop_async_arrival_matches_sync =
  QCheck2.Test.make ~name:"run_async (shuffled arrivals) agrees with run" ~count:40
    QCheck2.Gen.(pair (int_range 1 16) int)
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; n |] in
      let g = Generators.gnp rng n 0.35 in
      let sync, ts = Core.Simulator.run Core.Forest_protocol.recognize g in
      let async, ta = Core.Simulator.run_async ~rng Core.Forest_protocol.recognize g in
      sync = async && ts.Core.Simulator.message_bits = ta.Core.Simulator.message_bits)

(* ------------------------------------------------------------------ *)
(* The feed API itself                                                  *)
(* ------------------------------------------------------------------ *)

let test_feed_equals_apply () =
  let g = Generators.grid 3 3 in
  let n = Graph.order g in
  let p = Core.Forest_protocol.recognize in
  let msgs = Core.Simulator.local_phase p g in
  let feed = ref (Core.Protocol.start p.Core.Protocol.referee ~n) in
  for i = 1 to n do
    feed := Core.Protocol.feed !feed ~id:i msgs.(i - 1)
  done;
  Alcotest.(check bool) "feed = apply" (Core.Protocol.apply p ~n msgs)
    (Core.Protocol.finish !feed)

let test_run_referee_guards_length () =
  Alcotest.check_raises "wrong message count"
    (Invalid_argument "Protocol.run_referee: wrong message count") (fun () ->
      ignore
        (Core.Protocol.run_referee Core.Forest_protocol.recognize.Core.Protocol.referee ~n:4
           (Array.make 3 Core.Message.empty)))

(* ------------------------------------------------------------------ *)
(* View: accessors, audit, guards                                       *)
(* ------------------------------------------------------------------ *)

let test_view_accessors_and_audit () =
  let v = Core.View.make ~n:10 ~id:4 ~neighbors:[ 2; 7; 9 ] in
  Alcotest.(check int) "id" 4 (Core.View.id v);
  Alcotest.(check int) "n" 10 (Core.View.n v);
  Alcotest.(check int) "deg" 3 (Core.View.deg v);
  Alcotest.(check (list int)) "neighbors" [ 2; 7; 9 ] (Core.View.neighbors v);
  Alcotest.(check int) "sum via fold" 18 (Core.View.fold_neighbors v 0 ( + ));
  let c = Core.View.audit v in
  Alcotest.(check int) "id reads" 1 c.Core.View.id_reads;
  Alcotest.(check int) "n reads" 1 c.Core.View.n_reads;
  Alcotest.(check int) "deg reads" 1 c.Core.View.deg_reads;
  Alcotest.(check int) "neighbor reads" 2 c.Core.View.neighbor_reads;
  Alcotest.(check int) "total queries" 5 (Core.View.queries v)

let test_view_guards () =
  Alcotest.check_raises "n < 1" (Invalid_argument "View.make: n must be positive") (fun () ->
      ignore (Core.View.make ~n:0 ~id:1 ~neighbors:[]));
  Alcotest.check_raises "id out of range" (Invalid_argument "View.make: id out of range")
    (fun () -> ignore (Core.View.make ~n:5 ~id:6 ~neighbors:[]))

let test_view_purity_under_audit () =
  (* The tally is invisible to the local function: re-evaluating on a
     fresh view with the same contents gives the same message. *)
  let p = Core.Degeneracy_protocol.reconstruct ~k:2 () in
  let mk () = p.Core.Protocol.local (Core.View.make ~n:9 ~id:5 ~neighbors:[ 1; 8 ]) in
  Alcotest.(check bool) "bit-identical" true (Core.Message.equal (mk ()) (mk ()))

(* ------------------------------------------------------------------ *)
(* Message framing round-trips                                          *)
(* ------------------------------------------------------------------ *)

let gen_message =
  (* Arbitrary bit strings, with empty messages well represented. *)
  QCheck2.Gen.(
    bind (int_range 0 40) (fun len ->
        map
          (fun bits ->
            let v = Refnet_bits.Bitvec.create len in
            List.iteri (fun i b -> if b then Refnet_bits.Bitvec.set v i) bits;
            v)
          (list_size (return len) bool)))

let prop_framed_roundtrip =
  QCheck2.Test.make ~name:"write_framed/read_framed round-trips" ~count:200 gen_message
    (fun m ->
      let w = Refnet_bits.Bit_writer.create () in
      Core.Message.write_framed w m;
      let r = Refnet_bits.Bit_reader.of_bitvec (Refnet_bits.Bit_writer.contents w) in
      Core.Message.equal m (Core.Message.read_framed r))

let prop_bundle_roundtrip =
  QCheck2.Test.make ~name:"bundle/unbundle round-trips (incl. empty parts)" ~count:200
    QCheck2.Gen.(list_size (int_range 0 6) gen_message)
    (fun parts ->
      let bundled = Core.Message.bundle parts in
      let back = Core.Message.unbundle ~count:(List.length parts) bundled in
      List.length back = List.length parts
      && List.for_all2 Core.Message.equal parts back)

let prop_concat_is_sequential_read =
  QCheck2.Test.make ~name:"concat of framed parts decodes sequentially" ~count:100
    QCheck2.Gen.(pair gen_message gen_message)
    (fun (a, b) ->
      let frame m =
        let w = Refnet_bits.Bit_writer.create () in
        Core.Message.write_framed w m;
        Core.Message.of_writer w
      in
      let joined = Core.Message.concat [ frame a; frame b ] in
      let r = Core.Message.reader joined in
      let a' = Core.Message.read_framed r in
      let b' = Core.Message.read_framed r in
      Core.Message.equal a a' && Core.Message.equal b b')

(* ------------------------------------------------------------------ *)
(* Trace sinks                                                          *)
(* ------------------------------------------------------------------ *)

let test_trace_event_stream () =
  let g = Generators.cycle 7 in
  let sink, events = Core.Trace.memory () in
  let _, t = Core.Simulator.run ~trace:sink Core.Forest_protocol.recognize g in
  let evs = events () in
  let count p = List.length (List.filter p evs) in
  Alcotest.(check int) "one span begin" 1
    (count (function Core.Trace.Span_begin _ -> true | _ -> false));
  Alcotest.(check int) "one span end" 1
    (count (function Core.Trace.Span_end _ -> true | _ -> false));
  Alcotest.(check int) "n local events" 7
    (count (function Core.Trace.Node_local _ -> true | _ -> false));
  Alcotest.(check int) "n absorb events" 7
    (count (function Core.Trace.Referee_absorb _ -> true | _ -> false));
  (match List.filter (function Core.Trace.Referee_done _ -> true | _ -> false) evs with
  | [ Core.Trace.Referee_done { n; max_bits; total_bits; _ } ] ->
    Alcotest.(check int) "done.n" 7 n;
    Alcotest.(check int) "done.max" t.Core.Simulator.max_bits max_bits;
    Alcotest.(check int) "done.total" t.Core.Simulator.total_bits total_bits
  | _ -> Alcotest.fail "expected exactly one Referee_done");
  (* Per-node trace data matches the transcript. *)
  let traced_total =
    List.fold_left
      (fun acc ev -> match ev with Core.Trace.Node_local { bits; _ } -> acc + bits | _ -> acc)
      0 evs
  in
  Alcotest.(check int) "bits add up" t.Core.Simulator.total_bits traced_total;
  (* Every node queried its view through the audited accessors. *)
  List.iter
    (fun ev ->
      match ev with
      | Core.Trace.Node_local { queries; _ } ->
        Alcotest.(check bool) "view was queried" true
          (queries.Core.View.id_reads + queries.Core.View.n_reads + queries.Core.View.deg_reads
           + queries.Core.View.neighbor_reads
          > 0)
      | _ -> ())
    evs

let test_trace_async_absorbs_every_id_once () =
  let g = Generators.grid 3 3 in
  let sink, events = Core.Trace.memory () in
  let _ = Core.Simulator.run_async ~rng:(Random.State.make [| 42 |]) ~trace:sink
      Core.Forest_protocol.recognize g
  in
  let ids =
    List.filter_map
      (function Core.Trace.Referee_absorb { id; _ } -> Some id | _ -> None)
      (events ())
  in
  Alcotest.(check (list int)) "each id exactly once" (List.init 9 (fun i -> i + 1))
    (List.sort compare ids)

let test_trace_untraced_is_silent () =
  Alcotest.(check bool) "null is null" true (Core.Trace.is_null Core.Trace.null);
  (* Emission on the null sink is a no-op (and must not raise). *)
  Core.Trace.emit Core.Trace.null (Core.Trace.Span_begin { label = "x"; n = 1 })

let test_trace_json_escaping () =
  let s =
    Core.Trace.json_of_event (Core.Trace.Span_begin { label = "quo\"te\\back"; n = 3 })
  in
  Alcotest.(check string) "escaped"
    "{\"event\":\"span_begin\",\"label\":\"quo\\\"te\\\\back\",\"n\":3}" s

let test_trace_balanced_spans () =
  (* Every traced entry point must emit properly nested, label-matched
     Span_begin/Span_end pairs — including the fault-injection paths. *)
  let g = Generators.gnp (Random.State.make [| 77 |]) 12 0.3 in
  let faults = Core.Faults.of_list [ (1, Core.Faults.Crash); (2, Core.Faults.Duplicate) ] in
  let check name run =
    let sink, events = Core.Trace.memory () in
    run sink;
    let evs = events () in
    Alcotest.(check bool) (name ^ ": spans balance") true (Core.Trace.balanced_spans evs);
    Alcotest.(check bool) (name ^ ": spans present") true
      (List.exists (function Core.Trace.Span_begin _ -> true | _ -> false) evs)
  in
  check "run" (fun trace -> ignore (Core.Simulator.run ~trace Core.Forest_protocol.recognize g));
  check "run_faulty" (fun trace ->
      ignore (Core.Simulator.run_faulty ~faults ~trace Core.Forest_protocol.hardened g));
  check "run_async" (fun trace ->
      ignore
        (Core.Simulator.run_async ~rng:(Random.State.make [| 7 |]) ~trace
           Core.Forest_protocol.recognize g));
  check "coalition run" (fun trace ->
      ignore
        (Core.Coalition.run ~trace Core.Connectivity_parts.decide g
           ~parts:(Core.Coalition.partition_by_ranges ~n:12 ~parts:3)));
  check "coalition run_faulty" (fun trace ->
      ignore
        (Core.Coalition.run_faulty ~faults ~trace Core.Connectivity_parts.hardened g
           ~parts:(Core.Coalition.partition_by_ranges ~n:12 ~parts:3)));
  (* The checker itself rejects mismatched and dangling spans. *)
  let b l = Core.Trace.Span_begin { label = l; n = 1 }
  and e l = Core.Trace.Span_end { label = l; n = 1 } in
  Alcotest.(check bool) "nested ok" true
    (Core.Trace.balanced_spans [ b "a"; b "b"; e "b"; e "a" ]);
  Alcotest.(check bool) "label mismatch" false (Core.Trace.balanced_spans [ b "a"; e "b" ]);
  Alcotest.(check bool) "dangling begin" false (Core.Trace.balanced_spans [ b "a" ]);
  Alcotest.(check bool) "stray end" false (Core.Trace.balanced_spans [ e "a" ]);
  Alcotest.(check bool) "crossed pairs" false
    (Core.Trace.balanced_spans [ b "a"; b "b"; e "a"; e "b" ])

let test_trace_jsonl_lines () =
  let path = Filename.temp_file "refnet_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Core.Trace.jsonl oc in
      let g = Generators.cycle 5 in
      let _ = Core.Simulator.run ~trace:sink Core.Forest_protocol.recognize g in
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      (* span begin + 5 local + 5 absorb + done + span end *)
      Alcotest.(check int) "line count" 13 (List.length lines);
      List.iter
        (fun line ->
          Alcotest.(check bool) "looks like a JSON object" true
            (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}'))
        lines)

let () =
  Alcotest.run "streaming"
    [
      ( "arrival order",
        [
          Alcotest.test_case "reconstruction referees" `Quick test_reconstruction_order_insensitive;
          Alcotest.test_case "decision referees" `Quick test_decision_order_insensitive;
          Alcotest.test_case "reduction referees" `Quick test_reduction_order_insensitive;
        ] );
      ( "feed API",
        [
          Alcotest.test_case "feed equals apply" `Quick test_feed_equals_apply;
          Alcotest.test_case "length guard" `Quick test_run_referee_guards_length;
        ] );
      ( "view",
        [
          Alcotest.test_case "accessors and audit" `Quick test_view_accessors_and_audit;
          Alcotest.test_case "guards" `Quick test_view_guards;
          Alcotest.test_case "purity under audit" `Quick test_view_purity_under_audit;
        ] );
      ( "trace",
        [
          Alcotest.test_case "event stream" `Quick test_trace_event_stream;
          Alcotest.test_case "async absorbs each id once" `Quick
            test_trace_async_absorbs_every_id_once;
          Alcotest.test_case "null sink" `Quick test_trace_untraced_is_silent;
          Alcotest.test_case "json escaping" `Quick test_trace_json_escaping;
          Alcotest.test_case "balanced spans on every entry point" `Quick
            test_trace_balanced_spans;
          Alcotest.test_case "jsonl lines" `Quick test_trace_jsonl_lines;
        ] );
      ( "framing",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_framed_roundtrip;
            prop_bundle_roundtrip;
            prop_concat_is_sequential_read;
            prop_async_arrival_matches_sync;
          ] );
    ]
